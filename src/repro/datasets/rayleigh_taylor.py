"""Rayleigh-Taylor instability density field (IAMR-like, 3-level AMR dataset).

The paper's "RT" dataset comes from the IAMR incompressible flow code: a heavy
fluid sits above a light fluid and the perturbed interface grows fingers and a
turbulent mixing layer.  The important structure (and the AMR refinement) is
concentrated in that mixing layer — the dataset has three levels with 15 % /
31 % / 54 % densities (Table III).  The generator builds a multi-mode
perturbed interface with small-scale mixing noise superimposed inside the
layer.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.datasets.synthetic import gaussian_random_field
from repro.utils.rng import default_rng

__all__ = ["rayleigh_taylor_field"]


def rayleigh_taylor_field(
    shape: Tuple[int, int, int] = (64, 64, 64),
    heavy_density: float = 3.0,
    light_density: float = 1.0,
    interface_position: float = 0.5,
    amplitude: float = 0.08,
    n_modes: int = 6,
    mixing_width: float = 0.06,
    mixing_strength: float = 0.35,
    seed: Union[int, str, None] = "rayleigh-taylor",
) -> np.ndarray:
    """Generate an RT-instability-like density field.

    The last axis is the direction of gravity: density transitions from
    ``heavy_density`` (top) to ``light_density`` (bottom) across a perturbed
    interface with a turbulent mixing layer around it.
    """
    nx, ny, nz = (int(s) for s in shape)
    rng = default_rng(seed)

    x = np.linspace(0.0, 1.0, nx, endpoint=False)[:, None]
    y = np.linspace(0.0, 1.0, ny, endpoint=False)[None, :]

    # Multi-mode perturbation of the interface height h(x, y).
    height = np.full((nx, ny), float(interface_position))
    for _ in range(int(n_modes)):
        kx = rng.integers(1, 5)
        ky = rng.integers(1, 5)
        phase_x = rng.uniform(0, 2 * np.pi)
        phase_y = rng.uniform(0, 2 * np.pi)
        amp = amplitude * rng.uniform(0.3, 1.0) / max(1.0, 0.5 * (kx + ky))
        height += amp * np.sin(2 * np.pi * kx * x + phase_x) * np.sin(
            2 * np.pi * ky * y + phase_y
        )

    z = np.linspace(0.0, 1.0, nz)[None, None, :]
    signed_distance = z - height[:, :, None]

    # Smooth tanh transition from light (below) to heavy (above).
    transition = 0.5 * (1.0 + np.tanh(signed_distance / max(mixing_width, 1e-6)))
    density = light_density + (heavy_density - light_density) * transition

    # Turbulent mixing confined to the layer around the interface.
    mixing_mask = np.exp(-((signed_distance / (2.5 * mixing_width)) ** 2))
    turbulence = gaussian_random_field((nx, ny, nz), spectral_index=-1.8, seed=rng)
    turbulence = gaussian_filter(turbulence, sigma=1.0)
    density = density + mixing_strength * (heavy_density - light_density) * mixing_mask * turbulence

    return np.clip(density, 0.1 * light_density, None)
