"""Nyx-like cosmological baryon density fields.

The Nyx "baryon density" field is strongly non-Gaussian: a log-normal
background (large-scale structure) punctuated by compact, very high density
halos — the regions the paper's range-based ROI extraction captures with only
15 % of the volume (Fig. 4) and the halo-finder analysis cares about.  The
generator combines a power-law Gaussian random field (exponentiated to a
log-normal) with a population of halo-like blobs whose amplitudes follow a
steep power-law mass function.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.datasets.synthetic import gaussian_blobs, gaussian_random_field
from repro.utils.rng import default_rng

__all__ = ["nyx_density_field"]


def nyx_density_field(
    shape: Tuple[int, int, int] = (64, 64, 64),
    n_halos: int = 60,
    contrast: float = 1.4,
    halo_boost: float = 25.0,
    spectral_index: float = -2.6,
    seed: Union[int, str, None] = "nyx",
) -> np.ndarray:
    """Generate a Nyx-like baryon density field (positive, mean ~ 1).

    Parameters
    ----------
    shape:
        Grid shape (the paper uses 512^3; benchmarks here default to 64^3).
    n_halos:
        Number of halo-like over-densities to superimpose.
    contrast:
        Log-normal contrast of the background large-scale structure.
    halo_boost:
        Relative amplitude of the heaviest halos over the background.
    spectral_index:
        Power-law index of the underlying Gaussian random field.
    """
    shape = tuple(int(s) for s in shape)
    rng = default_rng(seed)

    background = gaussian_random_field(shape, spectral_index=spectral_index, seed=rng)
    density = np.exp(contrast * background)

    # Halo population: steep power-law amplitudes, small radii.
    halos = np.zeros(shape, dtype=np.float64)
    if n_halos > 0:
        # A couple of massive halos plus many small ones.
        amplitudes = halo_boost * (rng.pareto(2.5, size=int(n_halos)) + 1.0)
        sigmas = rng.uniform(0.008, 0.03, size=int(n_halos))
        for amp, sigma in zip(amplitudes, sigmas):
            halos += gaussian_blobs(
                shape,
                n_blobs=1,
                amplitude_range=(float(amp), float(amp)),
                sigma_range=(float(sigma), float(sigma)),
                seed=rng,
            )
    density = density + halos
    density = density / density.mean()
    return density
