"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on Nyx cosmology (three timesteps), WarpX electromagnetic,
IAMR Rayleigh-Taylor, the Hurricane Isabel benchmark and S3D combustion data.
Those datasets are not redistributable / not available offline, so this
subpackage generates synthetic fields with the same qualitative structure
(ROI concentration, smoothness, dynamic range) and the same multi-resolution
configuration (level counts and per-level densities of Table III), scaled to
laptop-sized grids.

:func:`repro.datasets.registry.get_dataset` is the single entry point used by
examples and benchmarks.
"""

from repro.datasets.hurricane import hurricane_field
from repro.datasets.nyx import nyx_density_field
from repro.datasets.rayleigh_taylor import rayleigh_taylor_field
from repro.datasets.registry import DATASET_TABLE, Dataset, available_datasets, get_dataset
from repro.datasets.s3d import s3d_field
from repro.datasets.synthetic import gaussian_blobs, gaussian_random_field, smooth_wave_field
from repro.datasets.warpx import warpx_ez_field

__all__ = [
    "Dataset",
    "DATASET_TABLE",
    "available_datasets",
    "get_dataset",
    "gaussian_random_field",
    "gaussian_blobs",
    "smooth_wave_field",
    "nyx_density_field",
    "warpx_ez_field",
    "rayleigh_taylor_field",
    "hurricane_field",
    "s3d_field",
]
