"""Hurricane Isabel-like field (flat atmospheric domain with a vortex core).

The Hurricane Isabel benchmark (IEEE Visualization 2004 contest) is a
500 x 500 x 100 atmospheric simulation whose interesting structure is the
hurricane eye/vortex and surrounding rain bands; the paper uses it as an
"adaptive" (uniform-to-multi-resolution) dataset with two levels at
35 % / 65 % density and for the uncertainty-visualization case study
(Fig. 14).  The generator builds a Rankine-like vortex with a calm eye,
spiral rain bands and broad background noise, on a flat (nx = ny >> nz)
domain.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.datasets.synthetic import gaussian_random_field
from repro.utils.rng import default_rng

__all__ = ["hurricane_field"]


def hurricane_field(
    shape: Tuple[int, int, int] = (64, 64, 16),
    eye_position: Tuple[float, float] = (0.45, 0.55),
    eye_radius: float = 0.04,
    vortex_radius: float = 0.22,
    n_bands: int = 4,
    band_strength: float = 0.5,
    background_level: float = 0.25,
    seed: Union[int, str, None] = "hurricane",
) -> np.ndarray:
    """Generate a hurricane-like wind-speed magnitude field.

    The first two axes span the horizontal plane; the last (short) axis is
    altitude, along which the vortex weakens and tilts slightly.
    """
    nx, ny, nz = (int(s) for s in shape)
    rng = default_rng(seed)

    x = np.linspace(0.0, 1.0, nx)[:, None]
    y = np.linspace(0.0, 1.0, ny)[None, :]

    field = np.zeros((nx, ny, nz), dtype=np.float64)
    for iz in range(nz):
        altitude = iz / max(1, nz - 1)
        # The vortex weakens with altitude and its centre drifts (tilt).
        cx = eye_position[0] + 0.05 * altitude
        cy = eye_position[1] - 0.03 * altitude
        strength = 1.0 - 0.6 * altitude

        dx = x - cx
        dy = y - cy
        r = np.sqrt(dx**2 + dy**2)
        theta = np.arctan2(dy, dx)

        # Rankine-style tangential wind: rises to a max at vortex_radius then decays.
        wind = np.where(
            r < vortex_radius,
            r / max(vortex_radius, 1e-6),
            np.exp(-(r - vortex_radius) / (2.0 * vortex_radius)),
        )
        # Calm eye.
        wind = wind * (1.0 - np.exp(-(r**2) / (2.0 * eye_radius**2)))
        # Spiral rain bands.
        spiral = 1.0 + band_strength * np.cos(n_bands * theta - 14.0 * r)
        field[:, :, iz] = strength * wind * spiral

    background = background_level * gaussian_random_field((nx, ny, nz), spectral_index=-2.2, seed=rng)
    field = field + gaussian_filter(np.abs(background), sigma=1.0)
    return field
