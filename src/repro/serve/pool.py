"""``ConnectionPool``: a small per-backend pool of wire-protocol connections.

One :class:`~repro.serve.client.RemoteStore` serializes its exchanges under a
lock — correct for a single analysis client, but a relay (the shard router,
the HTTP gateway) funnels *many* concurrent requests at the *same* backend,
and one connection turns that fan-in into a queue.  The pool fixes exactly
that: up to ``size`` connections per backend, leased one exchange at a time.

Semantics:

* **checkout/checkin with lease pinning** — :meth:`ConnectionPool.lease` is a
  context manager; the connection it yields is pinned to the caller until the
  block exits, so an exchange never interleaves with another thread's.
* **poison-on-transport-failure** — a :class:`RemoteStore` poisons itself when
  an exchange dies mid-stream (``closed`` goes true); checkin discards such
  connections instead of recycling them, and the freed slot reconnects on the
  next checkout.  One broken stream never infects later requests.
* **bounded, queueing** — at most ``size`` connections exist; when all are
  leased, checkout blocks on a condition variable until one returns.
* **drain on close** — :meth:`close` marks the pool closed and closes idle
  connections immediately; leased connections are closed as they check back
  in, so in-flight exchanges finish undisturbed.  The shard router calls this
  from ``set_map`` when a shard leaves the topology.

Dial policy (address, timeout, refused-connection retry/backoff) comes from
one :class:`~repro.serve.client.ConnectSpec` — declared once, shared with
every other connect site.

Locking: the condition variable guards only bookkeeping.  Dialing and closing
sockets always happens *outside* it, so a slow backend connect can never
stall another thread's checkin (the runtime lockcheck enforces this).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple, Union

from repro.serve.client import ConnectSpec, RemoteStore
from repro.serve.protocol import ProtocolError

__all__ = ["ConnectionPool"]


class ConnectionPool:
    """Up to ``size`` pooled :class:`RemoteStore` connections to one backend."""

    def __init__(
        self,
        spec: Union[ConnectSpec, str, Tuple[str, int]],
        size: int = 4,
        tracer=None,
    ) -> None:
        if not isinstance(spec, ConnectSpec):
            spec = ConnectSpec(
                spec if isinstance(spec, str) else f"{spec[0]}:{spec[1]}"
            )
        self.spec = spec
        self.size = max(1, int(size))
        self.tracer = tracer
        self._cond = threading.Condition()
        self._idle: List[RemoteStore] = []  # repro: guarded-by(_cond)
        self._n_open = 0  # live + being-dialed connections  # repro: guarded-by(_cond)
        self._closed = False  # repro: guarded-by(_cond)
        self._counters: Dict[str, int] = {  # repro: guarded-by(_cond)
            "created": 0,
            "leases": 0,
            "waits": 0,
            "poisoned": 0,
        }

    @property
    def address(self) -> str:
        return self.spec.address

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def warm(self) -> None:
        """Dial one connection now, so a dead backend fails loudly up front."""
        with self.lease():
            pass

    @contextmanager
    def lease(self) -> Iterator[RemoteStore]:
        """Check out one connection, pinned to the caller for the block."""
        conn = self._checkout()
        try:
            yield conn
        finally:
            self._checkin(conn)

    # -- checkout / checkin ----------------------------------------------------
    def _checkout(self) -> RemoteStore:
        with self._cond:
            while True:
                if self._closed:
                    raise ProtocolError(
                        f"connection pool for {self.spec.address} is closed"
                    )
                while self._idle:
                    conn = self._idle.pop()
                    if conn.closed:
                        # Poisoned while idle (backend hung up); drop the slot.
                        self._n_open -= 1
                        self._counters["poisoned"] += 1
                        continue
                    self._counters["leases"] += 1
                    return conn
                if self._n_open < self.size:
                    # Reserve the slot now; dial outside the lock below.
                    self._n_open += 1
                    break
                self._counters["waits"] += 1
                self._cond.wait()
        try:
            conn = self.spec.connect(tracer=self.tracer)
        except BaseException:
            with self._cond:
                self._n_open -= 1
                self._cond.notify()
            raise
        with self._cond:
            drained = self._closed
            if drained:
                self._n_open -= 1
                self._cond.notify()
            else:
                self._counters["created"] += 1
                self._counters["leases"] += 1
        if drained:
            conn.close()
            raise ProtocolError(f"connection pool for {self.spec.address} is closed")
        return conn

    def _checkin(self, conn: RemoteStore) -> None:
        discard = False
        with self._cond:
            if conn.closed:
                # Transport failure mid-lease poisoned it; free the slot so
                # the next checkout dials a replacement.
                self._n_open -= 1
                self._counters["poisoned"] += 1
            elif self._closed:
                # Pool drained while this lease was in flight.
                self._n_open -= 1
                discard = True
            else:
                self._idle.append(conn)
            self._cond.notify()
        if discard:
            conn.close()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Drain: close idle connections now, leased ones as they return."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._n_open -= len(idle)
            self._cond.notify_all()
        for conn in idle:
            conn.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        """Pool accounting: open/idle connection counts plus lease counters."""
        with self._cond:
            return {
                **self._counters,
                "open": self._n_open,
                "idle": len(self._idle),
            }

    def __repr__(self) -> str:
        with self._cond:
            state = "closed" if self._closed else f"{self._n_open}/{self.size} open"
        return f"ConnectionPool({self.spec.address}, {state})"
