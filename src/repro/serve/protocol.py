"""Wire protocol of the read daemon: versioned, length-prefixed frames.

One frame carries one request or one response.  The layout is a fixed head,
a JSON header and an optional raw payload::

    b"RPSV" | u8 version | u32 header_len | u64 payload_len | header | payload

The header is UTF-8 JSON (operation, parameters, status, accounting); the
payload is raw bytes — for ``read`` responses the C-order buffer of the
result ndarray, described by ``dtype``/``shape`` entries in the header, so a
client reconstructs it with one ``frombuffer`` and no pickling.  Requests are
the ``repro store read`` shape serialized: ``(field, step, level)`` plus a
JSON-encodable index expression (:func:`index_to_wire`), exactly the plain
data a :class:`repro.array.CompressedArray` query compiles to.

The hot path is zero-copy end to end: a sender hands :func:`send_frame` the
result array's own buffer and it leaves through ``socket.sendmsg`` as a
scatter-gather pair (head+header, payload) with no concatenated frame bytes;
a receiver's :func:`read_frame` lands the payload in one preallocated buffer
(``readinto``) and :func:`decode_ndarray` wraps it as a read-only view — one
payload-sized allocation per response, total.  ``pack_frame`` (join the
parts) remains for tests and non-socket streams and is byte-identical.

Framing errors are their own exception tree so the daemon can answer them
with a clean error response instead of hanging or killing the connection
mid-frame: :class:`ProtocolError` for bad magic / truncation / oversized
headers, its subclass :class:`VersionMismatch` for a well-formed frame that
speaks another protocol version.  Application errors cross the wire as
``{"status": "error", "error_type": ..., "message": ...}`` headers and are
re-raised client-side with the original exception type
(:func:`raise_remote_error`), so remote reads fail exactly like local ones.
"""

from __future__ import annotations

import hashlib
import json
import operator
import struct
from typing import Any, BinaryIO, Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "WIRE_OPS",
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "VersionMismatch",
    "RemoteError",
    "pack_frame",
    "frame_parts",
    "send_frame",
    "read_frame",
    "encode_ndarray",
    "decode_ndarray",
    "payload_checksum",
    "verify_payload",
    "index_to_wire",
    "index_from_wire",
    "error_header",
    "raise_remote_error",
    "register_error_type",
]

PROTOCOL_MAGIC = b"RPSV"  # "RePro SerVe"
PROTOCOL_VERSION = 1

#: The protocol-v1 op vocabulary — the source of truth the wire-protocol lint
#: rule checks every dispatcher and client against.  Adding an op here without
#: a ``_dispatch`` branch in each daemon and a client request builder fails
#: ``repro lint``.
WIRE_OPS = ("catalog", "describe", "read", "stats", "health", "trace")

#: Frame head: magic, protocol version, header length, payload length.
_HEAD = struct.Struct("<4sBIQ")

#: Sanity cap on the JSON header so a corrupt length field cannot make the
#: receiver allocate gigabytes before noticing the frame is garbage.
MAX_HEADER_BYTES = 1 << 20

#: Absolute cap on a frame payload (responses carry whole result arrays, so
#: it is generous); a daemon reads *requests* — which carry no payload in
#: protocol v1 — under a much smaller cap, so a corrupt or hostile length
#: field cannot park a worker waiting for terabytes that never arrive.
#: ``read_frame(max_payload=None)`` lifts the per-receiver cap but still
#: enforces this bound: a single flipped bit in the length field must
#: surface as a typed :class:`ProtocolError` the failover path can absorb,
#: never as an unbounded allocation.
MAX_PAYLOAD_BYTES = 1 << 31


class ProtocolError(RuntimeError):
    """A frame could not be read or parsed (bad magic, truncation, bad JSON)."""


class VersionMismatch(ProtocolError):
    """A well-formed frame speaking an unsupported protocol version."""


class RemoteError(RuntimeError):
    """A daemon-side failure of a type the client cannot reconstruct."""


def frame_parts(
    header: Mapping[str, Any], payload: bytes = b"", version: int = PROTOCOL_VERSION
) -> List:
    """One frame as a scatter-gather list: ``[head + header blob, payload]``.

    The payload element is the caller's buffer, untouched: a bytes-like
    object passes through as-is, anything else exporting a buffer (an
    ndarray's data, an :func:`encode_ndarray` view) is wrapped as a flat
    ``memoryview`` — never concatenated.  :func:`pack_frame` joins the parts
    for tests and golden files; :func:`send_frame` writes them with one
    ``sendmsg`` so a multi-megabyte response leaves the process without an
    intermediate copy.
    """
    blob = json.dumps(dict(header), sort_keys=True).encode("utf-8")
    if len(blob) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header is {len(blob)} bytes; the protocol caps headers at "
            f"{MAX_HEADER_BYTES}"
        )
    if not isinstance(payload, (bytes, bytearray)):
        payload = memoryview(payload).cast("B")
    head = _HEAD.pack(PROTOCOL_MAGIC, int(version), len(blob), len(payload))
    return [head + blob, payload]


def pack_frame(
    header: Mapping[str, Any], payload: bytes = b"", version: int = PROTOCOL_VERSION
) -> bytes:
    """Serialize one frame; ``version`` is overridable for mismatch tests."""
    return b"".join(frame_parts(header, payload, version))


def send_frame(sock, header: Mapping[str, Any], payload: bytes = b"",
               version: int = PROTOCOL_VERSION) -> int:
    """Write one frame to a socket with scatter-gather I/O; returns bytes sent.

    The head+header and the payload leave as separate buffers through
    ``socket.sendmsg`` (with a ``sendall`` fallback for sockets that lack
    it), so the payload — typically the C-order buffer of a whole result
    array — is never copied into a concatenated frame.  Partial sends are
    resumed until the frame is fully written; transport failures surface as
    ``OSError`` exactly like ``sendall``.
    """
    views = [memoryview(p).cast("B") for p in frame_parts(header, payload, version)]
    views = [v for v in views if len(v)]
    sendmsg = getattr(sock, "sendmsg", None)
    total = 0
    while views:
        if sendmsg is not None:
            n = sendmsg(views)
        else:
            sock.sendall(views[0])
            n = len(views[0])
        total += n
        while views and n >= len(views[0]):
            n -= len(views[0])
            views.pop(0)
        if views and n:
            views[0] = views[0][n:]
    return total


def _read_exact(fh: BinaryIO, n: int, what: str) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = fh.read(n - len(buf))
        if not chunk:
            raise ProtocolError(
                f"truncated frame: expected {n} bytes of {what}, got {len(buf)}"
            )
        buf += chunk
    return buf


def _read_exact_into(fh: BinaryIO, n: int, what: str) -> memoryview:
    """Read exactly ``n`` bytes into one preallocated buffer (single allocation).

    The one payload-sized allocation a response costs: the bytes land via
    ``readinto`` (no per-chunk ``+=`` concatenation), and the returned
    ``memoryview`` is what :func:`decode_ndarray` wraps zero-copy.
    """
    try:
        buf = bytearray(n)
    except MemoryError as exc:
        # A length field under the cap can still out-size this host (or be a
        # corrupt frame's fiction); either way it is a transport-class frame
        # problem, not a server fault to relay verbatim.
        raise ProtocolError(
            f"frame claims {n} bytes of {what}; allocation failed"
        ) from exc
    view = memoryview(buf)
    readinto = getattr(fh, "readinto", None)
    got = 0
    while got < n:
        if readinto is not None:
            count = readinto(view[got:])
        else:
            chunk = fh.read(n - got)
            count = len(chunk)
            view[got : got + count] = chunk
        if not count:
            raise ProtocolError(
                f"truncated frame: expected {n} bytes of {what}, got {got}"
            )
        got += count
    return view


def read_frame(
    fh: BinaryIO, max_payload: Optional[int] = MAX_PAYLOAD_BYTES
) -> Optional[Tuple[Dict[str, Any], bytes]]:
    """Read one frame from a binary stream; ``None`` on clean end-of-stream.

    "Clean" means the stream ended exactly on a frame boundary (zero bytes
    available) — how a peer politely hangs up.  Anything else (short head,
    bad magic, oversized or undecodable header, over-``max_payload`` or
    short payload) raises :class:`ProtocolError`; a frame head with the
    wrong version raises :class:`VersionMismatch` *before* the header is
    parsed, so any future header-schema change stays diagnosable.
    ``max_payload=None`` lifts the payload cap to the absolute
    :data:`MAX_PAYLOAD_BYTES` bound (a client reading responses that carry
    whole arrays); a daemon reading payload-less requests passes a small
    cap instead.
    """
    first = fh.read(1)
    if not first:
        return None
    head = first + _read_exact(fh, _HEAD.size - 1, "frame head")
    magic, version, header_len, payload_len = _HEAD.unpack(head)
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {PROTOCOL_MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"protocol version mismatch: peer speaks {version}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header claims {header_len} bytes; the protocol caps headers "
            f"at {MAX_HEADER_BYTES}"
        )
    cap = MAX_PAYLOAD_BYTES if max_payload is None else max_payload
    if payload_len > cap:
        raise ProtocolError(
            f"frame claims a {payload_len}-byte payload; this receiver caps "
            f"payloads at {cap}"
        )
    blob = _read_exact(fh, header_len, "frame header")
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"corrupt frame header ({exc})") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be a JSON object, got {type(header).__name__}")
    payload = _read_exact_into(fh, payload_len, "frame payload")
    return header, payload


# -- ndarray payloads ----------------------------------------------------------
def encode_ndarray(arr: np.ndarray) -> Tuple[Dict[str, Any], memoryview]:
    """Describe an array for a frame header and expose its C-order buffer.

    The returned payload is a flat read-through ``memoryview`` of the
    array's own memory — zero-copy for contiguous input (the view keeps the
    array's buffer alive); only non-contiguous input pays a compacting copy.
    :func:`frame_parts` / :func:`send_frame` pass the view through to the
    socket untouched.
    """
    arr = np.asarray(arr)
    if not arr.flags.c_contiguous:
        # ascontiguousarray would also promote 0-d to 1-d, so only copy when
        # the layout actually requires it.
        arr = np.ascontiguousarray(arr).reshape(arr.shape)
    meta = {"dtype": arr.dtype.str, "shape": list(arr.shape)}
    # reshape(-1) is a view on contiguous data; cast("B") flattens to bytes
    # without touching them (works for 0-d and read-only arrays alike).
    return meta, memoryview(arr.reshape(-1)).cast("B")


def decode_ndarray(
    meta: Mapping[str, Any], payload: bytes, copy: bool = False
) -> np.ndarray:
    """Rebuild an array from its header description and raw buffer.

    By default the result is a **read-only zero-copy view** over ``payload``
    (which stays alive as the array's base) — receiving a response costs one
    payload-sized allocation in :func:`read_frame` and nothing here.  Pass
    ``copy=True`` for a private writable array, e.g. when the caller mutates
    the result in place.
    """
    dtype = np.dtype(meta["dtype"])
    shape = tuple(int(s) for s in meta["shape"])
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(payload) != expected:
        raise ProtocolError(
            f"ndarray payload is {len(payload)} bytes but dtype {dtype} and "
            f"shape {shape} require {expected}"
        )
    arr = np.frombuffer(payload, dtype=dtype).reshape(shape)
    if copy:
        return arr.copy()
    if arr.flags.writeable:
        arr.flags.writeable = False
    return arr


# -- payload integrity ---------------------------------------------------------
def payload_checksum(payload) -> str:
    """Hex ``blake2b-64`` digest of a frame payload.

    Carried as the optional ``"checksum"`` header key on responses with a
    payload, so every hop that touches the bytes — the end client, and the
    shard router before it relays — can tell a corrupted payload from a
    correct one.  64 bits keeps the hash pass cheap next to the socket copy
    while making silent corruption astronomically unlikely to slip through.
    """
    return hashlib.blake2b(
        memoryview(payload).cast("B") if payload is not None else b"",
        digest_size=8,
    ).hexdigest()


def verify_payload(header: Mapping[str, Any], payload) -> None:
    """Check a response payload against its header checksum, if present.

    Raises :class:`ProtocolError` on mismatch — a *transport*-class failure,
    so callers poison the connection and (router-side) fail over to another
    replica instead of serving corrupt bytes.  Headers without a
    ``"checksum"`` key pass unchecked: the field is optional so v1 peers
    that predate it stay compatible.
    """
    expected = header.get("checksum")
    if expected is None:
        return
    actual = payload_checksum(payload)
    if actual != str(expected):
        raise ProtocolError(
            f"payload checksum mismatch: header says {expected}, "
            f"payload hashes to {actual} ({len(payload)} bytes)"
        )


# -- index expressions ---------------------------------------------------------
def index_to_wire(index: Any) -> List[Any]:
    """Encode a basic-indexing expression as JSON-ready plain data.

    Integers stay integers, ``...`` becomes the string ``"..."``, and a slice
    becomes ``{"start":, "stop":, "step":}`` with ``None`` fields preserved —
    the exact element kinds :func:`repro.array.indexing.compile_index`
    accepts, so a daemon compiles a wire index with no extra validation
    surface.  Unsupported kinds raise the same ``TypeError`` the local view
    raises, before any bytes move.
    """
    if not isinstance(index, tuple):
        index = (index,)
    out: List[Any] = []
    for item in index:
        if item is Ellipsis:
            out.append("...")
        elif isinstance(item, slice):
            out.append(
                {
                    "start": None if item.start is None else int(item.start),
                    "stop": None if item.stop is None else int(item.stop),
                    "step": None if item.step is None else int(item.step),
                }
            )
        else:
            # operator.index matches the local view's acceptance exactly
            # (bools index like 0/1, floats and arrays are rejected), and the
            # diagnostic is the compiler's own, so parity cannot drift.
            try:
                out.append(operator.index(item))
            except TypeError:
                from repro.array.indexing import unsupported_index_error

                raise unsupported_index_error(item) from None
    return out


def index_from_wire(items: Any) -> Tuple[Any, ...]:
    """Decode :func:`index_to_wire` output back into an index tuple."""
    if not isinstance(items, list):
        raise ProtocolError(f"wire index must be a list, got {type(items).__name__}")
    out = []
    for item in items:
        if item == "...":
            out.append(Ellipsis)
        elif isinstance(item, int):
            out.append(int(item))
        elif isinstance(item, dict):
            out.append(slice(item.get("start"), item.get("stop"), item.get("step")))
        else:
            raise ProtocolError(f"unsupported wire index element {item!r}")
    return tuple(out)


# -- error transport -----------------------------------------------------------
#: Exception types a daemon error response reconstructs client-side; anything
#: else surfaces as :class:`RemoteError` carrying the daemon's message.
_ERROR_TYPES = {
    "ValueError": ValueError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "TypeError": TypeError,
    "ProtocolError": ProtocolError,
    "VersionMismatch": VersionMismatch,
}


def register_error_type(cls: type) -> type:
    """Register an exception type for typed transport by its class name.

    Layered subsystems (the shard router's :class:`~repro.shard.ShardError`)
    register their error types at import time so clients that imported the
    layer reconstruct them exactly; clients that did not still get the
    message via the :class:`RemoteError` fallback.  Returns ``cls`` so it
    works as a decorator.
    """
    _ERROR_TYPES[cls.__name__] = cls
    return cls


def error_header(exc: BaseException) -> Dict[str, str]:
    """Response header describing a daemon-side failure."""
    message = exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
    return {
        "status": "error",
        "error_type": type(exc).__name__,
        "message": str(message),
    }


def raise_remote_error(header: Mapping[str, Any]) -> None:
    """Re-raise an error response with its original exception type."""
    name = str(header.get("error_type", ""))
    message = str(header.get("message", "unknown daemon error"))
    cls = _ERROR_TYPES.get(name)
    if cls is None:
        raise RemoteError(f"{name or 'daemon error'}: {message}")
    raise cls(message)
