"""``repro.serve`` — a shared-cache read daemon for array queries.

The multi-client step after :mod:`repro.array`: a view query is already plain
data (``field``, ``step``, ``level``, an index expression), so this package
serves it over a local socket from **one** decode pool — one
:class:`repro.store.Store`, one shared :class:`repro.array.BlockCache`, one
:class:`repro.store.engine.CodecEngine` — instead of every analysis process
paying full decode cost::

    # server (or: repro serve RUN_DIR --addr 127.0.0.1:4815)
    daemon = ReadDaemon(store)
    addr = daemon.start()

    # any number of clients (or: repro store read ... --remote ADDR)
    remote = repro.connect(addr)
    arr = remote["density", 10]        # lazy: one describe round trip
    plane = arr[:, :, 16]              # daemon decodes only missed blocks

Three pieces:

* :mod:`repro.serve.protocol` — versioned, length-prefixed JSON-header +
  raw-ndarray-payload frames for ``describe`` / ``catalog`` / ``read`` /
  ``stats``, with typed error transport;
* :class:`ReadDaemon` (:mod:`repro.serve.daemon`) — threaded accept loop,
  per-connection workers, shared readers/cache/engine, per-request decode
  accounting, graceful shutdown;
* :class:`RemoteStore` / :class:`RemoteArray` (:mod:`repro.serve.client`) —
  the same lazy surface as :class:`repro.array.CompressedArray`, so existing
  analysis and vis code works unchanged against a socket.
"""

from repro.serve.client import ConnectSpec, RemoteArray, RemoteStore, connect
from repro.serve.daemon import ReadDaemon, WireDaemon, parse_address
from repro.serve.pool import ConnectionPool
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    VersionMismatch,
)

__all__ = [
    "ReadDaemon",
    "WireDaemon",
    "RemoteStore",
    "RemoteArray",
    "connect",
    "ConnectSpec",
    "ConnectionPool",
    "parse_address",
    "ProtocolError",
    "VersionMismatch",
    "RemoteError",
    "PROTOCOL_VERSION",
]
