"""``ReadDaemon``: serve a store's array queries from one shared cache.

One daemon wraps one :class:`repro.store.Store`, the store's shared
:class:`repro.array.BlockCache` and its :class:`repro.store.engine.CodecEngine`
behind a local TCP socket.  Many analysis clients then share a single decode
pool: the first client to touch a block pays the decode, every later query —
from any connection — hits the cache.  This is the multi-client step the
ROADMAP names after the lazy view API: a view query is plain data
``(field, step, level, compiled index)``, so serving it is framing, not new
read logic.

The socket machinery lives in :class:`WireDaemon`, a dispatch-agnostic base
class (bind/accept loop, per-connection workers, framed request handling,
request tracing, access logging, graceful shutdown).  :class:`ReadDaemon`
plugs the store read path into it; the shard router
(:class:`repro.shard.RouterDaemon`) plugs a fan-out relay into the *same*
base, so both ends of a routed request speak literally the same server code.

Concurrency model
-----------------
A background accept loop hands each connection to its own worker thread;
NumPy decode kernels release the GIL, so concurrent cache misses overlap.
Container readers are opened once per ``(field, step)`` and shared across
connections (each payload fetch opens its own file handle, so readers are
safe to share); all daemon-wide counters mutate under one lock.  Per-request
accounting (blocks touched / decoded / served from cache) is measured by a
counting wrapper around the block source, so every ``read`` response reports
exactly what it cost — the numbers ``repro store read --remote`` prints.

Shutdown is graceful: :meth:`WireDaemon.stop` closes the listener and every
open connection, then joins the workers, so a test fixture (or ``repro
serve`` under SIGINT) always exits cleanly.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs import (
    REGISTRY,
    TRACER,
    access_extra,
    cache_collector,
    counter_family,
    engine_collector,
    gauge_family,
    reader_stats_family,
)
from repro.serve.protocol import (
    ProtocolError,
    encode_ndarray,
    error_header,
    index_from_wire,
    payload_checksum,
    read_frame,
    send_frame,
)

__all__ = ["WireDaemon", "ReadDaemon", "parse_address"]

log = logging.getLogger("repro.serve.daemon")

#: Protocol-v1 requests carry no payload; anything past this cap on an
#: incoming frame is a framing error, answered instead of awaited.
MAX_REQUEST_PAYLOAD = 1 << 20

#: Default bound on the daemon's per-entry container reader cache.  Each
#: cached reader pins a parsed index plus (for mmap containers) a mapping and
#: file descriptor, so an unbounded dict leaks fds against a store that keeps
#: appending entries; 64 covers every test/bench working set while keeping a
#: long-lived daemon's fd count flat.
DEFAULT_MAX_READERS = 64

_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_daemon_request_seconds",
    "Daemon request latency by operation (dispatch through response send).",
    labelnames=("op",),
)


def parse_address(addr: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Parse ``"host:port"`` (or a ``(host, port)`` pair) into a pair."""
    if isinstance(addr, tuple):
        host, port = addr
        return str(host), int(port)
    host, sep, port = str(addr).rpartition(":")
    if not sep or not host:
        raise ValueError(f"bad daemon address {addr!r}; expected host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"bad daemon address {addr!r}; port must be an integer") from None


class _CountingStream:
    """Byte-counting shim over a connection's read file.

    Forwards ``read``/``readinto`` (the two entry points
    :func:`~repro.serve.protocol.read_frame` uses) while summing bytes
    consumed, so the daemon can account request wire traffic without the
    protocol layer knowing.
    """

    __slots__ = ("_fh", "bytes_read")

    def __init__(self, fh) -> None:
        self._fh = fh
        self.bytes_read = 0

    def read(self, n: int = -1) -> bytes:
        data = self._fh.read(n)
        self.bytes_read += len(data)
        return data

    def readinto(self, buf) -> int:
        count = self._fh.readinto(buf)
        if count:
            self.bytes_read += count
        return count

    def close(self) -> None:
        self._fh.close()


class _ReaderSlot:
    """One cached :class:`ContainerReader` plus lease bookkeeping.

    ``refs`` counts in-flight requests using the reader; ``retired`` marks a
    slot evicted from the LRU (or invalidated by an overwrite) whose reader
    must close once the last lease drains — closing under an active fetch
    would yank the mmap out from under it.
    """

    __slots__ = ("entry", "reader", "refs", "retired")

    def __init__(self, entry, reader) -> None:
        self.entry = entry
        self.reader = reader
        self.refs = 0
        self.retired = False


class _CountingSource:
    """Per-request accounting shim around a block source.

    Forwards the full source protocol (token included, so cache keys stay
    shared across requests and connections) while counting the blocks the
    request touched and the subset it actually had to decode; the difference
    is the cache's contribution.
    """

    def __init__(self, source) -> None:
        self._source = source
        self.token = source.token
        self.touched = 0
        self.decoded = 0

    @property
    def levels(self):
        return self._source.levels

    def level_shape(self, level):
        return self._source.level_shape(level)

    def unit_size(self, level):
        return self._source.unit_size(level)

    def n_blocks(self, level):
        return self._source.n_blocks(level)

    def intersecting(self, level, block_range=None):
        handles, coords = self._source.intersecting(level, block_range)
        self.touched += len(handles)
        return handles, coords

    def decode(self, level, handles):
        self.decoded += len(handles)
        return self._source.decode(level, handles)

    def decode_into(self, level, handles, outs, srcs=None):
        self.decoded += len(handles)
        self._source.decode_into(level, handles, outs, srcs)

    @property
    def stats(self):
        return self._source.stats


def _request_fields(header: Dict, response: Dict) -> Dict[str, Any]:
    """Structured access-log fields: what was asked plus what it cost."""
    out: Dict[str, Any] = {}
    if header.get("field") is not None:
        out["field"] = header["field"]
        out["step"] = header.get("step", 0)
    accounting = response.get("accounting")
    if isinstance(accounting, dict):
        out.update(accounting)
    return out


class WireDaemon:
    """Dispatch-agnostic framed-protocol server: the socket half of a daemon.

    Owns the listener, the accept loop, per-connection worker threads, the
    per-request trace/metric/log plumbing and graceful shutdown — everything
    a :mod:`repro.serve.protocol` server needs except the meaning of a
    request.  Subclasses implement :meth:`_dispatch` (one request header in,
    one ``(response header, payload)`` out; every exception they let escape
    is answered as a typed error response by their own dispatch wrapper) and
    may extend :meth:`_collectors` with registry collectors that live exactly
    as long as the daemon runs.

    Parameters
    ----------
    host / port:
        Bind address; the default binds the loopback interface on an
        OS-assigned free port (read it back from :attr:`address`).
    backlog:
        Listen backlog of the accept socket.
    tracer:
        :class:`repro.obs.Tracer` recording request traces; defaults to the
        process-wide :data:`repro.obs.TRACER`.  When enabled, every request
        gets a ``request`` span (continuing the client's trace id when the
        header carries one) and the request's spans return to the client in
        the response header.
    slow_ms:
        Requests slower than this many milliseconds log a WARNING with the
        request's accounting — visible even at the default verbosity.
    """

    #: Thread name of the accept loop (overridden by subclasses for ps/py-spy).
    _accept_thread_name = "repro-serve-accept"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 32,
        tracer=None,
        slow_ms: Optional[float] = None,
    ) -> None:
        self.tracer = TRACER if tracer is None else tracer
        self.slow_ms = None if slow_ms is None else float(slow_ms)
        self._host = str(host)
        self._port = int(port)
        self._backlog = int(backlog)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._collector_fns: list = []
        self._connections: set = set()  # repro: guarded-by(_lock)
        self._workers: list = []  # repro: guarded-by(_lock)
        self._counters: Dict[str, int] = {  # repro: guarded-by(_lock)
            "requests": 0,
            "errors": 0,
            "connections": 0,
            "request_bytes_received": 0,
        }

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> str:
        """``host:port`` the daemon is bound to (after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("daemon is not started; call start() first")
        return f"{self._host}:{self._port}"

    def _collectors(self) -> List[Callable]:
        """Registry collectors to expose for the daemon's lifetime."""
        return []

    def start(self) -> str:
        """Bind, spawn the accept loop and return the bound address."""
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(self._backlog)
        self._host, self._port = listener.getsockname()[:2]
        self._listener = listener
        self._stop.clear()
        # Expose the daemon's own accounting (and whatever shared machinery
        # the subclass wraps) through the process-wide registry for the
        # lifetime of the daemon; stop() unregisters, so a stopped daemon
        # reports nothing.
        self._collector_fns = [
            REGISTRY.add_collector(fn, owner=self) for fn in self._collectors()
        ]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=self._accept_thread_name, daemon=True
        )
        self._accept_thread.start()
        log.debug("daemon started", extra=access_extra(address=self.address))
        return self.address

    def serve_forever(self, timeout: Optional[float] = None) -> None:
        """Start (if needed) and block until :meth:`stop` or ``timeout``."""
        self.start()
        self._stop.wait(timeout)

    def request_stop(self) -> None:
        """Unblock :meth:`serve_forever` without tearing anything down.

        Does only an ``Event.set()``, so it is safe from a signal handler;
        the caller then runs the full :meth:`stop` from normal context
        (which is how ``repro serve`` exits cleanly on SIGTERM).
        """
        self._stop.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Close the listener and every connection; join the workers."""
        self._stop.set()
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does not
            # wake a thread blocked in accept() — the join below would then
            # burn its full timeout on every stop.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._connections)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            worker.join(timeout)
        for collect in self._collector_fns:
            REGISTRY.remove_collector(collect)
        self._collector_fns = []
        self._listener = None
        self._accept_thread = None

    def __enter__(self) -> "WireDaemon":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept / connection loops --------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                self._counters["connections"] += 1
                self._connections.add(conn)
                # Workers that already finished are reaped here, so the list
                # stays proportional to the live connection count.
                self._workers = [w for w in self._workers if w.is_alive()]
                worker = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                self._workers.append(worker)
            worker.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        fh = _CountingStream(conn.makefile("rb"))
        try:
            peer = "%s:%s" % conn.getpeername()[:2]
        except OSError:
            peer = "?"
        log.debug("connection open", extra=access_extra(peer=peer))
        try:
            while not self._stop.is_set():
                before = fh.bytes_read
                try:
                    frame = read_frame(fh, max_payload=MAX_REQUEST_PAYLOAD)
                except (OSError, ValueError):
                    break  # connection torn down (e.g. by stop()) mid-read
                except ProtocolError as exc:
                    # Framing errors (bad magic, version mismatch, truncation)
                    # get one clean error response — a broken client is never
                    # left hanging — and then the connection closes: after a
                    # framing failure the stream position is untrustworthy.
                    with self._lock:
                        self._counters["errors"] += 1
                    log.warning(
                        "protocol error: %s", exc, extra=access_extra(peer=peer)
                    )
                    self._send(conn, error_header(exc))
                    break
                if frame is None:
                    break  # client hung up cleanly
                with self._lock:
                    self._counters["request_bytes_received"] += fh.bytes_read - before
                header, _payload = frame
                if not self._handle_request(conn, header, peer):
                    break
        finally:
            try:
                fh.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._connections.discard(conn)
            log.debug("connection closed", extra=access_extra(peer=peer))

    def _handle_request(self, conn: socket.socket, header: Dict, peer: str) -> bool:
        """Dispatch one request, send its response, record telemetry.

        Returns whether the connection is still usable (the send succeeded).
        """
        op = str(header.get("op"))
        start = time.perf_counter()
        tracer = self.tracer
        # The sink collects every span this request completes (the read
        # path's fetch/decode/paste children plus the request span itself);
        # it rides back in the response header so the client can graft the
        # daemon's side of the trace into its own ring.
        sink: Optional[list] = [] if tracer.enabled else None
        trace_id = parent_id = None
        wire_trace = header.get("trace")
        if tracer.enabled and isinstance(wire_trace, dict):
            trace_id = wire_trace.get("id")
            parent_id = wire_trace.get("parent")
        root = tracer.trace(
            "request", trace_id=trace_id, parent_id=parent_id, sink=sink, op=op
        )
        with root:
            response, payload = self._dispatch(header)
        if sink:
            # A relaying dispatch (the shard router) may already carry the
            # backend's spans in the response; ours append, the client grafts
            # both sides into one tree (span ids dedupe).
            response["spans"] = list(response.get("spans", ())) + sink
        send_wall = time.time()
        send_start = time.perf_counter()
        ok = self._send(conn, response, payload)
        done = time.perf_counter()
        root_trace = getattr(root, "trace_id", None)
        if root_trace is not None:
            # The send span outlives the response it travels in, so it is
            # recorded server-side only (readable via the "trace" op).
            tracer.add_span(
                "send", root_trace, parent_id=root.span_id, start=send_wall,
                duration=done - send_start, bytes=len(payload), ok=ok,
            )
        elapsed = done - start
        _REQUEST_SECONDS.labels(op=op).observe(elapsed)
        ms = elapsed * 1e3
        status = response.get("status", "error")
        if self.slow_ms is not None and ms >= self.slow_ms:
            log.warning(
                "slow request",
                extra=access_extra(
                    op=op, status=status, ms=round(ms, 3), peer=peer,
                    **_request_fields(header, response),
                ),
            )
        if log.isEnabledFor(logging.INFO):
            fields = _request_fields(header, response)
            if root_trace is not None:
                fields["trace"] = root_trace
            log.info(
                "request",
                extra=access_extra(
                    op=op, status=status, ms=round(ms, 3), peer=peer, **fields
                ),
            )
        return ok

    def _send(self, conn: socket.socket, header: Dict, payload: bytes = b"") -> bool:
        try:
            # Scatter-gather: the payload is the result array's own buffer
            # and goes out via sendmsg — no multi-MB frame concatenation.
            send_frame(conn, header, payload)
            return True
        except OSError:
            return False

    # -- request handling ------------------------------------------------------
    def _dispatch(self, header: Dict) -> Tuple[Dict, bytes]:
        """One request in, one ``(response header, payload)`` out.

        Implementations must answer *every* failure as an error response
        (:func:`~repro.serve.protocol.error_header`) rather than raising —
        a request must never kill its connection worker.
        """
        raise NotImplementedError

    def _op_trace(self, header: Dict) -> Dict:
        """Recent request traces from the daemon's ring (newest last).

        ``{"id": ...}`` selects one trace; ``{"limit": N}`` bounds the count.
        Server-side-only spans (``send``) are visible here and nowhere else.
        """
        trace_id = header.get("id")
        if trace_id is not None:
            spans = self.tracer.trace_spans(str(trace_id))
            return {"status": "ok", "traces": {str(trace_id): spans}}
        limit = header.get("limit")
        return {
            "status": "ok",
            "traces": self.tracer.traces(None if limit is None else int(limit)),
        }

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Daemon-wide counters as plain data (subclasses add their layers)."""
        with self._lock:
            return dict(self._counters)


class ReadDaemon(WireDaemon):
    """Read daemon over one store, one block cache and one codec engine.

    Parameters
    ----------
    store:
        A :class:`repro.store.Store` instance or a store root directory.
    host / port / backlog / tracer / slow_ms:
        See :class:`WireDaemon`.
    cache:
        Decoded-block LRU shared by every request; defaults to the store's
        own :attr:`~repro.store.Store.block_cache`, so in-process views and
        remote clients share one pool.
    refresh_ttl:
        Debounce for the per-request :meth:`Store.refresh` manifest stat, in
        seconds.  ``0`` (default) stats on every request — always-fresh, the
        historical behaviour; a small positive value (``repro serve``
        defaults to 50 ms) removes the stat syscall from hot query streams
        while keeping cross-process appends visible within the TTL.
    max_readers:
        Bound on the per-entry container reader LRU.  An evicted reader
        closes (releasing its mmap/fd) only after its in-flight fetches
        drain; its fetch counters fold into a retired accumulator so the
        aggregate reader metrics stay monotone.
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        cache=None,
        backlog: int = 32,
        refresh_ttl: float = 0.0,
        max_readers: int = DEFAULT_MAX_READERS,
        tracer=None,
        slow_ms: Optional[float] = None,
    ) -> None:
        from repro.store import Store

        super().__init__(
            host=host, port=port, backlog=backlog, tracer=tracer, slow_ms=slow_ms
        )
        self.store = store if isinstance(store, Store) else Store(store)
        self.cache = self.store.block_cache if cache is None else cache
        self.refresh_ttl = float(refresh_ttl)
        self.max_readers = max(1, int(max_readers))
        self._last_refresh = float("-inf")  # repro: guarded-by(_lock)
        self._readers: "OrderedDict[str, _ReaderSlot]" = OrderedDict()  # repro: guarded-by(_lock)
        self._retired_reader_stats: Dict[str, int] = {}  # repro: guarded-by(_lock)
        self._counters.update(
            {
                "reads": 0,
                "blocks_touched": 0,
                "blocks_decoded": 0,
                "result_bytes_sent": 0,
            }
        )

    def _collectors(self) -> List[Callable]:
        fns = [
            self._collect_families,
            cache_collector(self.cache, {"cache": "serve"}),
        ]
        if self.store.engine is not None:
            fns.append(engine_collector(self.store.engine))
        return fns

    def stop(self, timeout: float = 5.0) -> None:
        super().stop(timeout)
        with self._lock:
            slots = list(self._readers.values())
            self._readers.clear()
        for slot in slots:
            # Workers are joined: no leases remain, close unconditionally.
            self._close_slot(slot)

    def __repr__(self) -> str:
        bound = f"at {self._host}:{self._port}" if self._listener else "(not started)"
        return f"ReadDaemon({self.store.root} {bound}, {len(self.store)} entries)"

    # -- request handling ------------------------------------------------------
    def _dispatch(self, header: Dict) -> Tuple[Dict, bytes]:
        op = header.get("op")
        with self._lock:
            self._counters["requests"] += 1
        try:
            # One stat per request keeps the catalog live against writers in
            # other processes (append-as-you-simulate); entry rows replaced
            # by an overwrite then invalidate their cached readers below.
            # With a positive refresh_ttl the stat is debounced: hot query
            # streams skip it until the TTL lapses.
            now = time.monotonic()
            with self._lock:
                due = now - self._last_refresh >= self.refresh_ttl
                if due:
                    self._last_refresh = now
            if due:
                self.store.refresh()
            if op == "describe":
                return self._op_describe(header), b""
            if op == "catalog":
                return self._op_catalog(), b""
            if op == "stats":
                # The stats op is the scrape surface: daemon counters for
                # compatibility plus the full registry snapshot (instruments
                # and collectors) that `repro stats --prom` renders.
                return {
                    "status": "ok",
                    **self.stats(),
                    "metrics": REGISTRY.snapshot(),
                }, b""
            if op == "health":
                # A liveness answer from local state only: reaching this
                # branch at all proves the daemon accepts and dispatches.
                with self._lock:
                    n_requests = self._counters["requests"]
                return {
                    "status": "ok",
                    "ok": True,
                    "kind": "daemon",
                    "root": str(self.store.root),
                    "requests": n_requests,
                }, b""
            if op == "trace":
                return self._op_trace(header), b""
            if op == "read":
                return self._op_read(header)
            raise ValueError(
                f"unknown operation {op!r}; the daemon serves describe, catalog, "
                "read, stats, health and trace"
            )
        except Exception as exc:  # noqa: BLE001 - every failure becomes a response
            with self._lock:
                self._counters["errors"] += 1
            return error_header(exc), b""

    @contextmanager
    def _lease(self, field: str, step: int):
        """Borrow the shared per-``(field, step)`` container reader.

        The cached reader is keyed by the catalog *entry*, not just the key:
        an overwrite-append (or ``adopt(..., overwrite=True)``) replaces the
        entry row, so the stale reader — whose parsed index describes the old
        bytes — is retired and the shared cache is cleared (the overwritten
        container reuses its path, which is the cache token).  Construction
        (file I/O, index parse) happens outside the daemon lock so a cold
        open never stalls other connections.

        Readers are held in a bounded LRU (``max_readers``): a lease bumps
        recency and pins the reader, so an eviction racing an in-flight fetch
        only *marks* the slot retired — the close happens here, when the last
        lease releases.
        """
        slot = self._acquire_slot(field, step)
        try:
            yield slot.reader
        finally:
            with self._lock:
                slot.refs -= 1
                drained = slot.retired and slot.refs == 0
            if drained:
                self._close_slot(slot)

    def _acquire_slot(self, field: str, step: int) -> _ReaderSlot:
        entry = self.store.entry(str(field), int(step))
        with self._lock:
            slot = self._readers.get(entry.key)
            if slot is not None and slot.entry == entry:
                slot.refs += 1
                self._readers.move_to_end(entry.key)
                return slot
        from repro.store.format import ContainerReader

        reader = ContainerReader(self.store.root / entry.path, engine=self.store.engine)
        redundant = None
        to_close: list = []
        invalidated = False
        with self._lock:
            current = self._readers.get(entry.key)
            if current is not None and current.entry == entry:
                # Another thread opened it first; ours never served a fetch.
                current.refs += 1
                self._readers.move_to_end(entry.key)
                slot, redundant = current, reader
            else:
                if current is not None:
                    invalidated = True
                    self._retire_locked(current, to_close)
                    del self._readers[entry.key]
                slot = _ReaderSlot(entry, reader)
                slot.refs = 1
                self._readers[entry.key] = slot
                while len(self._readers) > self.max_readers:
                    key, old = next(iter(self._readers.items()))
                    if old is slot:
                        break
                    del self._readers[key]
                    self._retire_locked(old, to_close)
        if redundant is not None:
            redundant.close()
        for old in to_close:
            self._close_slot(old)
        if invalidated:
            self.cache.clear()
        return slot

    def _retire_locked(self, slot: _ReaderSlot, to_close: list) -> None:  # repro: holds(_lock)
        """Mark a slot evicted; schedule the close if no lease pins it."""
        slot.retired = True
        if slot.refs == 0:
            to_close.append(slot)

    def _close_slot(self, slot: _ReaderSlot) -> None:
        """Close a retired reader, folding its counters into the accumulator.

        Folding keeps the aggregate reader metrics monotone across evictions:
        a collector summing live readers only would *decrease* when an evicted
        reader's history left the working set — poison for rate() queries.
        """
        stats = dict(slot.reader.stats)
        with self._lock:
            for key, value in stats.items():
                self._retired_reader_stats[key] = (
                    self._retired_reader_stats.get(key, 0) + int(value)
                )
        slot.reader.close()
        log.debug(
            "reader closed",
            extra=access_extra(entry=slot.entry.key, retired=slot.retired),
        )

    def _op_describe(self, header: Dict) -> Dict:
        if header.get("field") is None:
            return {
                "status": "ok",
                "kind": "store",
                "root": str(self.store.root),
                "n_entries": len(self.store),
                "fields": self.store.fields(),
            }
        with self._lease(header["field"], header.get("step", 0)) as reader:
            return {
                "status": "ok",
                "kind": "container",
                "codec": reader.codec,
                "error_bound": reader.error_bound,
                "metadata": reader.metadata,
                "levels": [
                    {
                        "level": info.level,
                        "level_shape": list(info.level_shape),
                        "unit_size": info.unit_size,
                        "n_blocks": info.n_blocks,
                    }
                    for info in reader.levels
                ],
            }

    def _op_catalog(self) -> Dict:
        from dataclasses import asdict

        return {"status": "ok", "entries": [asdict(e) for e in self.store.entries()]}

    def _op_read(self, header: Dict) -> Tuple[Dict, bytes]:
        from repro.array import CompressedArray, ContainerSource

        if ("index" in header) == ("bbox" in header):
            raise ValueError("a read request needs exactly one of 'index' or 'bbox'")
        with self._lease(header["field"], header.get("step", 0)) as reader:
            source = _CountingSource(ContainerSource(reader))
            view = CompressedArray(
                source,
                level=int(header.get("level", 0)),
                fill_value=float(header.get("fill_value", 0.0)),
                cache=self.cache,
            )
            if "index" in header:
                result = view[index_from_wire(header["index"])]
            else:
                bbox = [(int(lo), int(hi)) for lo, hi in header["bbox"]]
                result = view.read_roi(bbox)
            meta, payload = encode_ndarray(np.asarray(result))
        accounting = {
            "blocks_touched": source.touched,
            "blocks_decoded": source.decoded,
            "cache_hits": source.touched - source.decoded,
        }
        with self._lock:
            self._counters["reads"] += 1
            self._counters["blocks_touched"] += source.touched
            self._counters["blocks_decoded"] += source.decoded
            self._counters["result_bytes_sent"] += len(payload)
        return {
            "status": "ok",
            **meta,
            "checksum": payload_checksum(payload),
            "accounting": accounting,
        }, payload

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Daemon-wide counters plus a cache snapshot, as plain data.

        ``blocks_decoded`` counts decodes performed *for requests* (the
        acceptance number: after warm-up, overlapping reads from any number
        of clients must not move it); ``cache`` is the shared
        :class:`~repro.array.BlockCache`'s own instrumentation.
        """
        with self._lock:
            out: Dict[str, Any] = dict(self._counters)
            out["containers_open"] = len(self._readers)
        out["cache"] = self.cache.stats
        out["entries"] = len(self.store)
        return out

    def _collect_families(self) -> list:
        """Registry collector: daemon counters and gauges as metric families."""
        with self._lock:
            counters = dict(self._counters)
            open_readers = len(self._readers)
            active = len(self._connections)
            reader_stats = dict(self._retired_reader_stats)
            slots = list(self._readers.values())
        for slot in slots:
            for key, value in slot.reader.stats.items():
                reader_stats[key] = reader_stats.get(key, 0) + int(value)
        families = [
            counter_family("repro_daemon_requests_total",
                           "Requests dispatched by the read daemon.",
                           counters["requests"]),
            counter_family("repro_daemon_reads_total",
                           "Successful read operations served.",
                           counters["reads"]),
            counter_family("repro_daemon_errors_total",
                           "Requests answered with an error response.",
                           counters["errors"]),
            counter_family("repro_daemon_connections_total",
                           "Client connections accepted since start.",
                           counters["connections"]),
            counter_family("repro_daemon_blocks_touched_total",
                           "Blocks intersected by read requests.",
                           counters["blocks_touched"]),
            counter_family("repro_daemon_blocks_decoded_total",
                           "Blocks decoded for read requests (cache misses).",
                           counters["blocks_decoded"]),
            counter_family("repro_daemon_result_bytes_total",
                           "Result payload bytes sent to clients.",
                           counters["result_bytes_sent"]),
            counter_family("repro_daemon_request_bytes_total",
                           "Request wire bytes received from clients.",
                           counters["request_bytes_received"]),
            gauge_family("repro_daemon_open_readers",
                         "Container readers currently cached by the daemon LRU.",
                         open_readers),
            gauge_family("repro_daemon_active_connections",
                         "Client connections currently open.",
                         active),
        ]
        # Aggregate container reader accounting: live LRU slots plus the
        # retired accumulator, so evictions never make the totals regress.
        families.extend(reader_stats_family(reader_stats))
        return families
