"""``ReadDaemon``: serve a store's array queries from one shared cache.

One daemon wraps one :class:`repro.store.Store`, the store's shared
:class:`repro.array.BlockCache` and its :class:`repro.store.engine.CodecEngine`
behind a local TCP socket.  Many analysis clients then share a single decode
pool: the first client to touch a block pays the decode, every later query —
from any connection — hits the cache.  This is the multi-client step the
ROADMAP names after the lazy view API: a view query is plain data
``(field, step, level, compiled index)``, so serving it is framing, not new
read logic.

Concurrency model
-----------------
A background accept loop hands each connection to its own worker thread;
NumPy decode kernels release the GIL, so concurrent cache misses overlap.
Container readers are opened once per ``(field, step)`` and shared across
connections (each payload fetch opens its own file handle, so readers are
safe to share); all daemon-wide counters mutate under one lock.  Per-request
accounting (blocks touched / decoded / served from cache) is measured by a
counting wrapper around the block source, so every ``read`` response reports
exactly what it cost — the numbers ``repro store read --remote`` prints.

Shutdown is graceful: :meth:`stop` closes the listener and every open
connection, then joins the workers, so a test fixture (or ``repro serve``
under SIGINT) always exits cleanly.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.serve.protocol import (
    ProtocolError,
    encode_ndarray,
    error_header,
    index_from_wire,
    read_frame,
    send_frame,
)

__all__ = ["ReadDaemon", "parse_address"]

#: Protocol-v1 requests carry no payload; anything past this cap on an
#: incoming frame is a framing error, answered instead of awaited.
MAX_REQUEST_PAYLOAD = 1 << 20


def parse_address(addr: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Parse ``"host:port"`` (or a ``(host, port)`` pair) into a pair."""
    if isinstance(addr, tuple):
        host, port = addr
        return str(host), int(port)
    host, sep, port = str(addr).rpartition(":")
    if not sep or not host:
        raise ValueError(f"bad daemon address {addr!r}; expected host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"bad daemon address {addr!r}; port must be an integer") from None


class _CountingSource:
    """Per-request accounting shim around a block source.

    Forwards the full source protocol (token included, so cache keys stay
    shared across requests and connections) while counting the blocks the
    request touched and the subset it actually had to decode; the difference
    is the cache's contribution.
    """

    def __init__(self, source) -> None:
        self._source = source
        self.token = source.token
        self.touched = 0
        self.decoded = 0

    @property
    def levels(self):
        return self._source.levels

    def level_shape(self, level):
        return self._source.level_shape(level)

    def unit_size(self, level):
        return self._source.unit_size(level)

    def n_blocks(self, level):
        return self._source.n_blocks(level)

    def intersecting(self, level, block_range=None):
        handles, coords = self._source.intersecting(level, block_range)
        self.touched += len(handles)
        return handles, coords

    def decode(self, level, handles):
        self.decoded += len(handles)
        return self._source.decode(level, handles)

    def decode_into(self, level, handles, outs, srcs=None):
        self.decoded += len(handles)
        self._source.decode_into(level, handles, outs, srcs)

    @property
    def stats(self):
        return self._source.stats


class ReadDaemon:
    """Read daemon over one store, one block cache and one codec engine.

    Parameters
    ----------
    store:
        A :class:`repro.store.Store` instance or a store root directory.
    host / port:
        Bind address; the default binds the loopback interface on an
        OS-assigned free port (read it back from :attr:`address`).
    cache:
        Decoded-block LRU shared by every request; defaults to the store's
        own :attr:`~repro.store.Store.block_cache`, so in-process views and
        remote clients share one pool.
    backlog:
        Listen backlog of the accept socket.
    refresh_ttl:
        Debounce for the per-request :meth:`Store.refresh` manifest stat, in
        seconds.  ``0`` (default) stats on every request — always-fresh, the
        historical behaviour; a small positive value (``repro serve``
        defaults to 50 ms) removes the stat syscall from hot query streams
        while keeping cross-process appends visible within the TTL.
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        cache=None,
        backlog: int = 32,
        refresh_ttl: float = 0.0,
    ) -> None:
        from repro.store import Store

        self.store = store if isinstance(store, Store) else Store(store)
        self.cache = self.store.block_cache if cache is None else cache
        self.refresh_ttl = float(refresh_ttl)
        self._last_refresh = float("-inf")
        self._host = str(host)
        self._port = int(port)
        self._backlog = int(backlog)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._readers: Dict[str, Any] = {}
        self._connections: set = set()
        self._workers: list = []
        self._counters: Dict[str, int] = {
            "requests": 0,
            "reads": 0,
            "errors": 0,
            "connections": 0,
            "blocks_touched": 0,
            "blocks_decoded": 0,
            "result_bytes_sent": 0,
        }

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> str:
        """``host:port`` the daemon is bound to (after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("daemon is not started; call start() first")
        return f"{self._host}:{self._port}"

    def start(self) -> str:
        """Bind, spawn the accept loop and return the bound address."""
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(self._backlog)
        self._host, self._port = listener.getsockname()[:2]
        self._listener = listener
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def serve_forever(self, timeout: Optional[float] = None) -> None:
        """Start (if needed) and block until :meth:`stop` or ``timeout``."""
        self.start()
        self._stop.wait(timeout)

    def request_stop(self) -> None:
        """Unblock :meth:`serve_forever` without tearing anything down.

        Does only an ``Event.set()``, so it is safe from a signal handler;
        the caller then runs the full :meth:`stop` from normal context
        (which is how ``repro serve`` exits cleanly on SIGTERM).
        """
        self._stop.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Close the listener and every connection; join the workers."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._connections)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            worker.join(timeout)
        self._listener = None
        self._accept_thread = None

    def __enter__(self) -> "ReadDaemon":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        bound = f"at {self._host}:{self._port}" if self._listener else "(not started)"
        return f"ReadDaemon({self.store.root} {bound}, {len(self.store)} entries)"

    # -- accept / connection loops --------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                self._counters["connections"] += 1
                self._connections.add(conn)
                # Workers that already finished are reaped here, so the list
                # stays proportional to the live connection count.
                self._workers = [w for w in self._workers if w.is_alive()]
                worker = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                self._workers.append(worker)
            worker.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        fh = conn.makefile("rb")
        try:
            while not self._stop.is_set():
                try:
                    frame = read_frame(fh, max_payload=MAX_REQUEST_PAYLOAD)
                except (OSError, ValueError):
                    break  # connection torn down (e.g. by stop()) mid-read
                except ProtocolError as exc:
                    # Framing errors (bad magic, version mismatch, truncation)
                    # get one clean error response — a broken client is never
                    # left hanging — and then the connection closes: after a
                    # framing failure the stream position is untrustworthy.
                    with self._lock:
                        self._counters["errors"] += 1
                    self._send(conn, error_header(exc))
                    break
                if frame is None:
                    break  # client hung up cleanly
                header, _payload = frame
                response, payload = self._dispatch(header)
                if not self._send(conn, response, payload):
                    break
        finally:
            try:
                fh.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._connections.discard(conn)

    def _send(self, conn: socket.socket, header: Dict, payload: bytes = b"") -> bool:
        try:
            # Scatter-gather: the payload is the result array's own buffer
            # and goes out via sendmsg — no multi-MB frame concatenation.
            send_frame(conn, header, payload)
            return True
        except OSError:
            return False

    # -- request handling ------------------------------------------------------
    def _dispatch(self, header: Dict) -> Tuple[Dict, bytes]:
        op = header.get("op")
        with self._lock:
            self._counters["requests"] += 1
        try:
            # One stat per request keeps the catalog live against writers in
            # other processes (append-as-you-simulate); entry rows replaced
            # by an overwrite then invalidate their cached readers below.
            # With a positive refresh_ttl the stat is debounced: hot query
            # streams skip it until the TTL lapses.
            now = time.monotonic()
            with self._lock:
                due = now - self._last_refresh >= self.refresh_ttl
                if due:
                    self._last_refresh = now
            if due:
                self.store.refresh()
            if op == "describe":
                return self._op_describe(header), b""
            if op == "catalog":
                return self._op_catalog(), b""
            if op == "stats":
                return {"status": "ok", **self.stats()}, b""
            if op == "read":
                return self._op_read(header)
            raise ValueError(
                f"unknown operation {op!r}; the daemon serves describe, catalog, "
                "read and stats"
            )
        except Exception as exc:  # noqa: BLE001 - every failure becomes a response
            with self._lock:
                self._counters["errors"] += 1
            return error_header(exc), b""

    def _reader(self, field: str, step: int):
        """Shared per-``(field, step)`` container reader, opened once per entry.

        The cached reader is keyed by the catalog *entry*, not just the key:
        an overwrite-append (or ``adopt(..., overwrite=True)``) replaces the
        entry row, so the stale reader — whose parsed index describes the old
        bytes — is reopened and the shared cache is cleared (the overwritten
        container reuses its path, which is the cache token).  Construction
        (file I/O, index parse) happens outside the daemon lock so a cold
        open never stalls other connections.
        """
        entry = self.store.entry(str(field), int(step))
        with self._lock:
            cached = self._readers.get(entry.key)
            if cached is not None and cached[0] == entry:
                return cached[1]
        from repro.store.format import ContainerReader

        reader = ContainerReader(self.store.root / entry.path, engine=self.store.engine)
        with self._lock:
            current = self._readers.get(entry.key)
            if current is not None and current[0] == entry:
                return current[1]  # another thread opened it first
            invalidated = current is not None
            self._readers[entry.key] = (entry, reader)
        if invalidated:
            self.cache.clear()
        return reader

    def _op_describe(self, header: Dict) -> Dict:
        if header.get("field") is None:
            return {
                "status": "ok",
                "kind": "store",
                "root": str(self.store.root),
                "n_entries": len(self.store),
                "fields": self.store.fields(),
            }
        reader = self._reader(header["field"], header.get("step", 0))
        return {
            "status": "ok",
            "kind": "container",
            "codec": reader.codec,
            "error_bound": reader.error_bound,
            "metadata": reader.metadata,
            "levels": [
                {
                    "level": info.level,
                    "level_shape": list(info.level_shape),
                    "unit_size": info.unit_size,
                    "n_blocks": info.n_blocks,
                }
                for info in reader.levels
            ],
        }

    def _op_catalog(self) -> Dict:
        from dataclasses import asdict

        return {"status": "ok", "entries": [asdict(e) for e in self.store.entries()]}

    def _op_read(self, header: Dict) -> Tuple[Dict, bytes]:
        from repro.array import CompressedArray, ContainerSource

        if ("index" in header) == ("bbox" in header):
            raise ValueError("a read request needs exactly one of 'index' or 'bbox'")
        reader = self._reader(header["field"], header.get("step", 0))
        source = _CountingSource(ContainerSource(reader))
        view = CompressedArray(
            source,
            level=int(header.get("level", 0)),
            fill_value=float(header.get("fill_value", 0.0)),
            cache=self.cache,
        )
        if "index" in header:
            result = view[index_from_wire(header["index"])]
        else:
            bbox = [(int(lo), int(hi)) for lo, hi in header["bbox"]]
            result = view.read_roi(bbox)
        meta, payload = encode_ndarray(np.asarray(result))
        accounting = {
            "blocks_touched": source.touched,
            "blocks_decoded": source.decoded,
            "cache_hits": source.touched - source.decoded,
        }
        with self._lock:
            self._counters["reads"] += 1
            self._counters["blocks_touched"] += source.touched
            self._counters["blocks_decoded"] += source.decoded
            self._counters["result_bytes_sent"] += len(payload)
        return {"status": "ok", **meta, "accounting": accounting}, payload

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Daemon-wide counters plus a cache snapshot, as plain data.

        ``blocks_decoded`` counts decodes performed *for requests* (the
        acceptance number: after warm-up, overlapping reads from any number
        of clients must not move it); ``cache`` is the shared
        :class:`~repro.array.BlockCache`'s own instrumentation.
        """
        with self._lock:
            out: Dict[str, Any] = dict(self._counters)
            out["containers_open"] = len(self._readers)
        out["cache"] = self.cache.stats
        out["entries"] = len(self.store)
        return out
