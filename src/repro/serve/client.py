"""``RemoteStore`` / ``RemoteArray``: the lazy view surface over a socket.

The client mirrors :mod:`repro.array` exactly — *open returns a view,
indexing triggers I/O* — so analysis and vis code written against a local
:class:`~repro.array.CompressedArray` works unchanged against a daemon::

    remote = repro.connect("127.0.0.1:4815")
    arr = remote["density", 10]          # one describe round trip
    plane = arr[:, :, 16]                # one read round trip
    coarse = arr.level(1)[...]           # sibling view, shared metadata

Indexing is compiled daemon-side: the client ships the raw expression
(:func:`~repro.serve.protocol.index_to_wire`) and re-raises daemon errors
with their original types, so ``IndexError``/``TypeError``/``ValueError``
behave bit-for-bit like the local view — the fuzz suite asserts this.  One
connection is one socket; requests are serialized under a lock, so a client
object may be shared between threads (each request is a single
request/response exchange).
"""

from __future__ import annotations

import dataclasses
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs import REGISTRY, TRACER, current_trace
from repro.obs import span as obs_span
from repro.serve.daemon import parse_address
from repro.serve.protocol import (
    ProtocolError,
    decode_ndarray,
    index_to_wire,
    raise_remote_error,
    read_frame,
    send_frame,
    verify_payload,
)
from repro.utils.rng import default_rng

__all__ = ["ConnectSpec", "RemoteStore", "RemoteArray", "connect"]

_CLIENT_SECONDS = REGISTRY.histogram(
    "repro_client_request_seconds",
    "Client-observed request round-trip latency by operation.",
    labelnames=("op",),
)
_PAYLOAD_BYTES = REGISTRY.counter(
    "repro_client_payload_bytes_total",
    "Frame payload bytes moved by remote clients, by direction.",
    labelnames=("direction",),
)
_PAYLOAD_SENT = _PAYLOAD_BYTES.labels(direction="sent")
_PAYLOAD_RECEIVED = _PAYLOAD_BYTES.labels(direction="received")


@dataclasses.dataclass(frozen=True)
class ConnectSpec:
    """Where and how to reach a daemon: address plus the one retry policy.

    Every surface that dials a daemon — :func:`connect`, the shard router's
    backends, the gateway's :class:`~repro.serve.pool.ConnectionPool` — goes
    through this spec, so retry/backoff semantics are declared once instead
    of being re-plumbed per call site.  The policy is bounded retry on the
    connect failures that waiting genuinely fixes: ``ConnectionRefusedError``
    (nothing bound yet — a daemon still launching) and
    ``ConnectionResetError``/``BrokenPipeError`` (a listener dropping us
    mid-handshake while it restarts).  Connecting is idempotent, so retrying
    these is always safe; every other connect failure (unreachable host,
    timeout) raises at once.

    Backoff uses *full jitter*: each attempt sleeps a uniform draw from
    ``[0, min(backoff · 2^attempt, 1.0)]``, so N pooled clients whose shard
    restarted don't re-dial in lockstep.  ``rng`` injects the jitter source
    (anything :func:`repro.utils.rng.default_rng` accepts — a seed makes the
    schedule deterministic in tests); it is excluded from equality/hashing
    so specs still compare by policy.
    """

    address: str
    timeout: float = 30.0
    retries: int = 0
    backoff: float = 0.05
    rng: Any = dataclasses.field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        host, port = parse_address(self.address)
        object.__setattr__(self, "address", f"{host}:{port}")

    def _jitter_rng(self):
        # An uninjected spec draws from OS entropy — default_rng(None) would
        # hand every process the package-wide *fixed* seed, putting all
        # clients back in the lockstep jitter exists to break.
        return np.random.default_rng() if self.rng is None else default_rng(self.rng)

    def backoff_delay(self, attempt: int, rng=None) -> float:
        """The full-jitter sleep before retry ``attempt`` (0-based)."""
        ceiling = min(float(self.backoff) * (2 ** attempt), 1.0)
        rng = self._jitter_rng() if rng is None else rng
        return float(rng.uniform(0.0, ceiling))

    def open_socket(self) -> socket.socket:
        """Dial the address under this spec's retry policy."""
        host, port = parse_address(self.address)
        rng = self._jitter_rng()
        attempt = 0
        while True:
            try:
                return socket.create_connection((host, port), timeout=self.timeout)
            except (ConnectionRefusedError, ConnectionResetError, BrokenPipeError):
                if attempt >= int(self.retries):
                    raise
                time.sleep(self.backoff_delay(attempt, rng=rng))
                attempt += 1

    def connect(self, tracer=None) -> "RemoteStore":
        """A fresh :class:`RemoteStore` over one socket dialed by this spec."""
        return RemoteStore(self, tracer=tracer)


def connect(
    addr: Union[str, Tuple[str, int]],
    timeout: float = 30.0,
    retries: int = 0,
    backoff: float = 0.05,
) -> "RemoteStore":
    """Connect to a :class:`~repro.serve.daemon.ReadDaemon` at ``host:port``.

    ``retries``/``backoff`` configure the :class:`ConnectSpec` retry policy
    (refused/reset connections only).  Off by default; the shard router and the
    HTTP gateway turn it on for their backend connections so startup never
    races a shard daemon's bind.
    """
    return RemoteStore(addr, timeout=timeout, retries=retries, backoff=backoff)


class RemoteStore:
    """Catalog + view factory over one daemon connection.

    The read-side subset of :class:`repro.store.Store`: ``entries()`` /
    ``fields()`` / ``steps()`` mirror the catalog queries, ``array()`` and
    ``store[field, step]`` return :class:`RemoteArray` views, and
    ``stats()`` exposes the daemon's shared-cache accounting.  Usable as a
    context manager; :meth:`close` hangs up politely.
    """

    def __init__(
        self,
        addr: Union[str, Tuple[str, int], ConnectSpec],
        timeout: float = 30.0,
        tracer=None,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> None:
        if isinstance(addr, ConnectSpec):
            spec = addr
        else:
            host, port = parse_address(addr)
            spec = ConnectSpec(
                f"{host}:{port}", timeout=timeout, retries=retries, backoff=backoff
            )
        self.spec = spec
        self.address = spec.address
        self.tracer = TRACER if tracer is None else tracer
        self._sock = spec.open_socket()
        self._fh = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._closed = False  # repro: guarded-by(_lock)

    # -- transport -------------------------------------------------------------
    def exchange(self, header: Dict[str, Any], payload: bytes = b"") -> Tuple[Dict, bytes]:
        """One framed request/response exchange, returned verbatim.

        The raw transport half of :meth:`request`: sends the frame, reads
        the response, records client metrics — and hands back the response
        header *exactly as the daemon wrote it*, error responses and
        ``spans`` included.  The shard router relays on this surface so a
        shard's typed error reaches the far client byte-for-byte.

        A *transport* failure mid-exchange (send error, recv timeout,
        truncated or garbled response) leaves the stream position unknowable,
        so it poisons the connection: further requests fail fast instead of
        misparsing a late response as their own.  Application errors reported
        by the daemon arrive on a healthy stream and keep the connection
        usable.  Responses are read uncapped — a whole-level read is
        legitimately as large as the level.
        """
        op = str(header.get("op"))
        if "trace" not in header:
            # Propagate the ambient trace (if any) in the request header, so
            # the daemon parents its request span on ours and one remote read
            # stays one trace across the wire.
            wire_trace = current_trace()
            if wire_trace is not None:
                header = {**header, "trace": wire_trace}
        start = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ProtocolError(f"connection to {self.address} is closed")
            try:
                with obs_span("encode", op=op, bytes=len(payload)):
                    send_frame(self._sock, header, payload)
                frame = read_frame(self._fh, max_payload=None)
            except (OSError, ProtocolError):
                self._teardown()
                raise
            if frame is None:
                self._teardown()
                raise ProtocolError(
                    f"daemon at {self.address} closed the connection mid-request"
                )
            try:
                # A checksum mismatch is transport-class corruption: the
                # stream can no longer be trusted, so poison like any other
                # mid-exchange failure.  The shard router exchanges on this
                # same surface, so corruption is caught *before* relay.
                verify_payload(*frame)
            except ProtocolError:
                self._teardown()
                raise
        resp, resp_payload = frame
        _CLIENT_SECONDS.labels(op=op).observe(time.perf_counter() - start)
        _PAYLOAD_SENT.inc(len(payload))
        _PAYLOAD_RECEIVED.inc(len(resp_payload))
        return resp, resp_payload

    def request(self, header: Dict[str, Any], payload: bytes = b"") -> Tuple[Dict, bytes]:
        """One exchange with the client niceties: graft spans, raise errors.

        See :meth:`exchange` for the transport contract.
        """
        resp, resp_payload = self.exchange(header, payload)
        # The daemon returns its request-scoped spans in the response header;
        # graft them into our ring (span-id dedupe makes the in-process
        # shared-tracer case harmless).  Errors carry spans too.
        spans = resp.pop("spans", None)
        if spans:
            self.tracer.graft(spans)
        if resp.get("status") != "ok":
            raise_remote_error(resp)
        return resp, resp_payload

    def _teardown(self) -> None:  # repro: holds(_lock)
        """Mark closed and release the socket (caller holds the lock)."""
        self._closed = True
        try:
            self._fh.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        """Whether the connection was closed (by us) or poisoned (by a
        transport failure); a closed store never becomes usable again."""
        return self._closed  # repro: unlocked -- racy-read probe; closing is one-way

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._teardown()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- catalog queries -------------------------------------------------------
    def describe(self, field: Optional[str] = None, step: int = 0) -> Dict[str, Any]:
        """Store summary, or one container's header + level geometry."""
        header: Dict[str, Any] = {"op": "describe"}
        if field is not None:
            header.update(field=str(field), step=int(step))
        resp, _ = self.request(header)
        resp.pop("status", None)
        return resp

    def entries(self) -> List[Dict[str, Any]]:
        """All catalog rows as plain dicts (the manifest schema)."""
        resp, _ = self.request({"op": "catalog"})
        return list(resp["entries"])

    def fields(self) -> List[str]:
        return sorted({e["field"] for e in self.entries()})

    def steps(self, field: str) -> List[int]:
        return sorted(e["step"] for e in self.entries() if e["field"] == str(field))

    def __len__(self) -> int:
        return int(self.describe()["n_entries"])

    def stats(self) -> Dict[str, Any]:
        """Daemon-wide counters + shared-cache snapshot.

        The ``"metrics"`` key holds the daemon process's full registry
        snapshot — feed it to :func:`repro.obs.render_prometheus` for text
        exposition (that is all ``repro stats ADDR --prom`` does).
        """
        resp, _ = self.request({"op": "stats"})
        resp.pop("status", None)
        return resp

    def health(self) -> Dict[str, Any]:
        """The daemon's health verdict.

        Against a single daemon: a cheap liveness echo.  Against a shard
        router: breaker-derived cluster health — ``ok``, per-shard breaker
        ``shards`` states, ``degraded`` shard names and the ``unreachable``
        replica sets (entries placed there have no live replica).
        """
        resp, _ = self.request({"op": "health"})
        resp.pop("status", None)
        return resp

    def traces(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> Dict[str, List[Dict[str, Any]]]:
        """Recent request traces from the daemon's ring (includes ``send``
        spans, which never travel in response headers)."""
        header: Dict[str, Any] = {"op": "trace"}
        if trace_id is not None:
            header["id"] = str(trace_id)
        if limit is not None:
            header["limit"] = int(limit)
        resp, _ = self.request(header)
        return dict(resp.get("traces", {}))

    # -- views -----------------------------------------------------------------
    def array(
        self, field: str, step: int, level: int = 0, fill_value: float = 0.0
    ) -> "RemoteArray":
        """Lazy remote view of one snapshot (one describe round trip)."""
        described = self.describe(field, step)
        return RemoteArray(
            self, str(field), int(step), described, level=level, fill_value=fill_value
        )

    def __getitem__(self, key: Tuple[str, int]) -> "RemoteArray":
        field, step = key
        return self.array(field, step)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"  # repro: unlocked -- repr is a racy snapshot
        return f"RemoteStore({self.address}, {state})"


class RemoteArray:
    """Lazy, NumPy-style view whose reads round-trip through a daemon.

    Same surface as the local view — ``shape``/``dtype``/``ndim``/``size``,
    ``levels`` + ``.level(k)``, basic indexing, ``numpy.asarray`` — with all
    geometry known from the opening ``describe``, so only ``__getitem__`` and
    :meth:`read_roi` move payload bytes.  :attr:`stats` accumulates the
    per-request accounting the daemon returns in its response headers.

    Results are **read-only zero-copy views** over the response buffer (one
    allocation per response, no ``frombuffer(...).copy()``); call ``.copy()``
    (or ``np.array(result)``) for a private writable array before mutating.
    """

    def __init__(
        self,
        store: RemoteStore,
        field: str,
        step: int,
        described: Dict[str, Any],
        level: Optional[int] = None,
        fill_value: float = 0.0,
    ) -> None:
        self._store = store
        self._field = field
        self._step = step
        self._described = described
        self._geometry = {
            int(lvl["level"]): lvl for lvl in described.get("levels", [])
        }
        self._level = int(min(self._geometry) if level is None else level)
        if self._level not in self._geometry:
            raise KeyError(
                f"no level {self._level}; available: {sorted(self._geometry)}"
            )
        self.fill_value = float(fill_value)
        self.stats: Dict[str, int] = {
            "requests": 0,
            "blocks_touched": 0,
            "blocks_decoded": 0,
            "cache_hits": 0,
        }

    # -- ndarray-style metadata -------------------------------------------------
    @property
    def field(self) -> str:
        return self._field

    @property
    def step(self) -> int:
        return self._step

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(int(s) for s in self._geometry[self._level]["level_shape"])

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of unsized view")
        return self.shape[0]

    @property
    def levels(self) -> Tuple[int, ...]:
        return tuple(sorted(self._geometry))

    @property
    def level_index(self) -> int:
        return self._level

    def level(self, k: int) -> "RemoteArray":
        """Sibling view of level ``k`` (no round trip; geometry is shared)."""
        return RemoteArray(
            self._store,
            self._field,
            self._step,
            self._described,
            level=k,
            fill_value=self.fill_value,
        )

    @property
    def n_blocks(self) -> int:
        return int(self._geometry[self._level]["n_blocks"])

    # -- reading ----------------------------------------------------------------
    def _read(self, request_body: Dict[str, Any]) -> np.ndarray:
        # Root span of the whole remote read: with the tracer enabled, its
        # trace id rides the request header and the daemon's fetch/decode/
        # paste spans come back under it — one trace, both sides of the wire.
        with self._store.tracer.trace(
            "remote_read", field=self._field, step=self._step, level=self._level
        ):
            resp, payload = self._store.request(
                {
                    "op": "read",
                    "field": self._field,
                    "step": self._step,
                    "level": self._level,
                    "fill_value": self.fill_value,
                    **request_body,
                }
            )
        accounting = resp.get("accounting", {})
        self.stats["requests"] += 1
        for key in ("blocks_touched", "blocks_decoded", "cache_hits"):
            self.stats[key] += int(accounting.get(key, 0))
        return decode_ndarray(resp, payload)

    def __getitem__(self, index) -> Any:
        result = self._read({"index": index_to_wire(index)})
        # A fully-scalar selection returns a NumPy scalar, like the local view.
        return result[()] if result.shape == () else result

    def read_roi(self, bbox) -> np.ndarray:
        """Decode a clamped cell-space bbox (the classic ``read_roi`` contract)."""
        return self._read({"bbox": [[int(lo), int(hi)] for lo, hi in bbox]})

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = np.asarray(self[...])
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        return out

    def __repr__(self) -> str:
        return (
            f"RemoteArray({self._field}/{self._step} via {self._store.address}, "
            f"shape={self.shape}, level={self._level} of {list(self.levels)}, "
            f"blocks={self.n_blocks})"
        )
