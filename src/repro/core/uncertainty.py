"""Compression-uncertainty modelling for probabilistic isosurfaces (§III-C).

Compression error is treated as per-voxel uncertainty: following the paper
(and Lindstrom's error-distribution study) the error of SZ/ZFP decompressed
data is modelled as a normal distribution whose mean and variance are
estimated from the compression errors *sampled during compression* (the same
samples the post-processing stage uses, so the extra cost is negligible).
Because the error can depend on the data value, the variance fed to
probabilistic marching cubes is conditioned on values near the isovalue
("isovalue related variance").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.compressors.base import Compressor
from repro.core.sampling import SampledErrors, sample_compression_errors
from repro.vis.probabilistic_mc import FeatureRecovery, crossing_probability, feature_recovery

__all__ = ["CompressionUncertaintyModel"]


@dataclass
class CompressionUncertaintyModel:
    """Normal error model of a compressor on a particular dataset.

    Construct it either from an existing :class:`SampledErrors` (reusing the
    post-processing samples, as the workflow does) or directly from data and a
    compressor via :meth:`from_sampling`.
    """

    sampled: SampledErrors
    #: width of the isovalue window, as a fraction of the sampled value range
    isovalue_window_fraction: float = 0.05
    #: minimum number of samples required before trusting the conditioned
    #: estimate; below this the global statistics are used
    min_conditioned_samples: int = 50

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_sampling(
        cls,
        data: np.ndarray,
        compressor: Compressor,
        error_bound: float,
        sampling_rate: float = 0.015,
        seed: Union[int, str, None] = "uncertainty-sampling",
        **kwargs,
    ) -> "CompressionUncertaintyModel":
        sampled = sample_compression_errors(
            data, compressor, error_bound, sampling_rate=sampling_rate, seed=seed
        )
        return cls(sampled=sampled, **kwargs)

    # -- global statistics ------------------------------------------------------
    def error_mean(self) -> float:
        """Mean signed compression error over all samples."""
        return self.sampled.error_mean()

    def error_std(self) -> float:
        """Standard deviation of the compression error over all samples."""
        return self.sampled.error_std()

    # -- isovalue-conditioned statistics ----------------------------------------
    def _isovalue_mask(self, isovalue: float) -> np.ndarray:
        values = self.sampled.decompressed
        value_range = float(values.max() - values.min())
        window = self.isovalue_window_fraction * value_range if value_range > 0 else np.inf
        return np.abs(values - isovalue) <= window

    def isovalue_conditioned_std(self, isovalue: float) -> float:
        """Error standard deviation restricted to samples near the isovalue.

        Falls back to the global standard deviation when too few samples fall
        inside the window (and never returns exactly zero, which would make
        the probabilistic model degenerate).
        """
        mask = self._isovalue_mask(isovalue)
        errors = self.sampled.errors
        if int(mask.sum()) >= self.min_conditioned_samples:
            std = float(errors[mask].std())
        else:
            std = float(errors.std())
        if std <= 0:
            # All sampled errors identical (e.g. lossless region): use a tiny
            # fraction of the error bound so probabilities stay well defined.
            std = max(1e-12, 0.01 * self.sampled.error_bound)
        return std

    def isovalue_conditioned_mean(self, isovalue: float) -> float:
        """Mean signed error near the isovalue (bias of the compressor there)."""
        mask = self._isovalue_mask(isovalue)
        errors = self.sampled.errors
        if int(mask.sum()) >= self.min_conditioned_samples:
            return float(errors[mask].mean())
        return float(errors.mean())

    # -- probabilistic marching cubes --------------------------------------------
    def crossing_probability(
        self, decompressed: np.ndarray, isovalue: float, bias_correct: bool = False
    ) -> np.ndarray:
        """Per-cell isosurface crossing probability for decompressed data."""
        mu = np.asarray(decompressed, dtype=np.float64)
        if bias_correct:
            mu = mu - self.isovalue_conditioned_mean(isovalue)
        sigma = self.isovalue_conditioned_std(isovalue)
        return crossing_probability(mu, sigma, isovalue)

    def feature_recovery(
        self,
        original: np.ndarray,
        decompressed: np.ndarray,
        isovalue: float,
        probability_threshold: float = 0.05,
    ) -> FeatureRecovery:
        """Fig. 14 analysis: how much compression-pruned isosurface is recovered."""
        sigma = self.isovalue_conditioned_std(isovalue)
        return feature_recovery(
            original,
            decompressed,
            sigma,
            isovalue,
            probability_threshold=probability_threshold,
        )
