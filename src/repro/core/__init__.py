"""The paper's contributions, layered on top of the substrates.

* :mod:`repro.core.roi` — compression-oriented ROI extraction (uniform ->
  adaptive multi-resolution data).
* :mod:`repro.core.partition` — unit-block partitioning of sparse resolution
  levels and the merge arrangements compared in Fig. 6 (linear, stack/AMRIC,
  adjacency/TAC).
* :mod:`repro.core.padding` — dynamic padding of the small dimensions of the
  merged array (SZ3MR improvement 1).
* :mod:`repro.core.adaptive_eb` — per-interpolation-level adaptive error
  bounds (SZ3MR improvement 2).
* :mod:`repro.core.mr_compressor` / :mod:`repro.core.sz3mr` — the
  multi-resolution compression engine and the paper's SZ3MR configuration.
* :mod:`repro.core.sampling` / :mod:`repro.core.postprocess` — compression
  error sampling and the error-bounded Bezier post-processing.
* :mod:`repro.core.uncertainty` — normal-distribution uncertainty model of
  compression error for probabilistic marching cubes.
* :mod:`repro.core.workflow` — end-to-end facade tying everything together.
"""

from repro.core.adaptive_eb import AdaptiveErrorBoundSchedule, adaptive_level_error_bounds
from repro.core.mr_compressor import (
    CompressedHierarchy,
    CompressedLevel,
    MultiResolutionCompressor,
)
from repro.core.padding import PadInfo, pad_small_dimensions, unpad
from repro.core.partition import (
    Arrangement,
    UnitBlockSet,
    extract_unit_blocks,
    linear_merge,
    scatter_unit_blocks,
    stack_merge,
    adjacency_merge,
)
from repro.core.postprocess import PostProcessor, PostProcessPlan, bezier_boundary_smooth
from repro.core.roi import ROIResult, extract_roi, roi_preview_field
from repro.core.sampling import SampledErrors, sample_compression_errors
from repro.core.sz3mr import SZ3MRCompressor, sz3mr_variants
from repro.core.uncertainty import CompressionUncertaintyModel
from repro.core.workflow import MultiResolutionWorkflow, WorkflowResult

__all__ = [
    "AdaptiveErrorBoundSchedule",
    "adaptive_level_error_bounds",
    "MultiResolutionCompressor",
    "CompressedHierarchy",
    "CompressedLevel",
    "PadInfo",
    "pad_small_dimensions",
    "unpad",
    "Arrangement",
    "UnitBlockSet",
    "extract_unit_blocks",
    "scatter_unit_blocks",
    "linear_merge",
    "stack_merge",
    "adjacency_merge",
    "PostProcessor",
    "PostProcessPlan",
    "bezier_boundary_smooth",
    "ROIResult",
    "extract_roi",
    "roi_preview_field",
    "SampledErrors",
    "sample_compression_errors",
    "SZ3MRCompressor",
    "sz3mr_variants",
    "CompressionUncertaintyModel",
    "MultiResolutionWorkflow",
    "WorkflowResult",
]
