"""Unit-block partitioning of sparse resolution levels and merge arrangements.

Each resolution level of multi-resolution data occupies only part of the
domain (Fig. 2), so before 3-D compression the occupied region is cut into
``u^3`` *unit blocks* which are then arranged into one (or several) dense
arrays.  Three arrangements from the literature are implemented (Fig. 6):

* **linear merge** — concatenate unit blocks along one axis; the baseline and
  the basis of the paper's SZ3MR (which adds padding on top);
* **stack merge** — AMRIC's near-cubic stacking, which balances the dimensions
  but juxtaposes non-neighbouring blocks (unsmooth internal boundaries);
* **adjacency merge** — a TAC-like strategy that only concatenates blocks that
  are spatial neighbours, producing several separately-compressed segments
  (better locality, extra encoding overhead).

All arrangements are invertible; :func:`split_merged` +
:func:`scatter_unit_blocks` reconstruct the level array exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.morton import morton_encode3d, morton_encode2d
from repro.utils.validation import ensure_array

__all__ = [
    "UnitBlockSet",
    "Arrangement",
    "extract_unit_blocks",
    "scatter_unit_blocks",
    "linear_merge",
    "stack_merge",
    "adjacency_merge",
    "split_merged",
    "ARRANGEMENTS",
]

ARRANGEMENTS = ("linear", "stack", "adjacency")


@dataclass
class UnitBlockSet:
    """Occupied unit blocks of one resolution level.

    Attributes
    ----------
    blocks:
        Array of shape ``(n_blocks, u, u[, u])`` holding the block values.
    coords:
        Integer block coordinates ``(n_blocks, ndim)`` in the level's block
        grid, ordered by Morton code so consecutive blocks are spatial
        neighbours whenever possible.
    unit_size:
        Unit block edge length ``u``.
    level_shape:
        Shape of the (full-domain) level array the blocks were cut from.
    """

    blocks: np.ndarray
    coords: np.ndarray
    unit_size: int
    level_shape: Tuple[int, ...]

    @property
    def n_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def ndim(self) -> int:
        return len(self.level_shape)


@dataclass
class Arrangement:
    """Bookkeeping needed to invert a merge arrangement."""

    kind: str
    unit_size: int
    ndim: int
    n_blocks: int
    #: stack merge: grid of blocks (per axis); adjacency merge: blocks per segment.
    layout: Tuple[int, ...] = field(default_factory=tuple)
    segments: Tuple[int, ...] = field(default_factory=tuple)


def _default_unit_size(level_shape: Sequence[int], requested: Optional[int]) -> int:
    if requested is not None:
        u = int(requested)
    else:
        u = 16
    u = min(u, *[int(s) for s in level_shape])
    return max(2, u)


def extract_unit_blocks(
    level_data: np.ndarray,
    mask: Optional[np.ndarray] = None,
    unit_size: Optional[int] = None,
) -> UnitBlockSet:
    """Cut the occupied region of a level into unit blocks.

    A unit block is kept when any of its cells is owned by the level
    (``mask``); with ``mask=None`` every block is kept (uniform data).  Blocks
    are ordered by the Morton code of their block coordinates so that the
    linear merge keeps as much spatial locality as a 1-D ordering can.
    """
    data = ensure_array(level_data, ndim=(2, 3), name="level_data")
    u = _default_unit_size(data.shape, unit_size)
    for s in data.shape:
        if s % u:
            raise ValueError(
                f"level shape {data.shape} is not divisible by unit block size {u}"
            )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != data.shape:
            raise ValueError("mask must have the same shape as level_data")

    nblocks_per_axis = tuple(s // u for s in data.shape)
    grids = np.meshgrid(*[np.arange(n) for n in nblocks_per_axis], indexing="ij")
    coords = np.stack([g.ravel() for g in grids], axis=1)

    if mask is not None:
        occupied = []
        for c in coords:
            sl = tuple(slice(int(ci) * u, (int(ci) + 1) * u) for ci in c)
            occupied.append(bool(mask[sl].any()))
        coords = coords[np.asarray(occupied, dtype=bool)]
    if coords.shape[0] == 0:
        raise ValueError("no occupied unit blocks; the level mask is empty")

    # Morton ordering of the occupied blocks.
    if data.ndim == 3:
        codes = morton_encode3d(coords[:, 0], coords[:, 1], coords[:, 2])
    else:
        codes = morton_encode2d(coords[:, 0], coords[:, 1])
    order = np.argsort(codes, kind="stable")
    coords = coords[order]

    blocks = np.empty((coords.shape[0],) + (u,) * data.ndim, dtype=np.float64)
    for i, c in enumerate(coords):
        sl = tuple(slice(int(ci) * u, (int(ci) + 1) * u) for ci in c)
        blocks[i] = data[sl]
    return UnitBlockSet(blocks=blocks, coords=coords, unit_size=u, level_shape=data.shape)


def scatter_unit_blocks(
    block_set: UnitBlockSet,
    blocks: Optional[np.ndarray] = None,
    fill_value: float = 0.0,
) -> np.ndarray:
    """Place unit blocks back into a full level-shaped array.

    ``blocks`` overrides the stored block values (used to scatter decompressed
    blocks); unoccupied regions are filled with ``fill_value``.
    """
    values = block_set.blocks if blocks is None else np.asarray(blocks, dtype=np.float64)
    if values.shape != block_set.blocks.shape:
        raise ValueError(
            f"blocks must have shape {block_set.blocks.shape}, got {values.shape}"
        )
    out = np.full(block_set.level_shape, float(fill_value), dtype=np.float64)
    u = block_set.unit_size
    for i, c in enumerate(block_set.coords):
        sl = tuple(slice(int(ci) * u, (int(ci) + 1) * u) for ci in c)
        out[sl] = values[i]
    return out


# -- arrangements -------------------------------------------------------------
def linear_merge(block_set: UnitBlockSet) -> Tuple[np.ndarray, Arrangement]:
    """Concatenate unit blocks along the last axis: ``(u, u, u*n)`` (Fig. 6-2a)."""
    blocks = block_set.blocks
    merged = np.concatenate(list(blocks), axis=-1)
    arrangement = Arrangement(
        kind="linear",
        unit_size=block_set.unit_size,
        ndim=block_set.ndim,
        n_blocks=block_set.n_blocks,
    )
    return merged, arrangement


def stack_merge(block_set: UnitBlockSet) -> Tuple[np.ndarray, Arrangement]:
    """AMRIC-style near-cubic stacking of unit blocks (Fig. 6-2b).

    Blocks are laid out on a ``g0 x g1 x g2`` grid chosen as close to a cube
    as possible; missing slots are filled by repeating the last block (the
    filler is dropped on inversion).
    """
    blocks = block_set.blocks
    n = block_set.n_blocks
    ndim = block_set.ndim
    # Near-cubic factorisation of the slot count.
    layout = []
    remaining = n
    for axis in range(ndim):
        g = int(np.ceil(remaining ** (1.0 / (ndim - axis))))
        g = max(1, g)
        layout.append(g)
        remaining = int(np.ceil(remaining / g))
    total_slots = int(np.prod(layout))
    n_fill = total_slots - n
    if n_fill > 0:
        filler = np.repeat(blocks[-1:], n_fill, axis=0)
        padded_blocks = np.concatenate([blocks, filler], axis=0)
    else:
        padded_blocks = blocks
    grid = padded_blocks.reshape(tuple(layout) + blocks.shape[1:])

    from repro.utils.blocks import assemble_blocks

    merged = assemble_blocks(grid)
    arrangement = Arrangement(
        kind="stack",
        unit_size=block_set.unit_size,
        ndim=ndim,
        n_blocks=n,
        layout=tuple(layout),
    )
    return merged, arrangement


def adjacency_merge(block_set: UnitBlockSet) -> Tuple[List[np.ndarray], Arrangement]:
    """TAC-like adjacency merge (Fig. 6-2c).

    Walk the Morton-ordered blocks and open a new segment whenever the next
    block is not a face/edge/corner neighbour of the previous one; each
    segment is linearly merged and will be compressed separately (this is the
    per-segment encoding overhead the paper attributes to TAC).
    """
    blocks = block_set.blocks
    coords = block_set.coords
    segments: List[np.ndarray] = []
    segment_sizes: List[int] = []
    start = 0
    for i in range(1, block_set.n_blocks + 1):
        is_break = i == block_set.n_blocks or np.abs(coords[i] - coords[i - 1]).max() > 1
        if is_break:
            seg_blocks = blocks[start:i]
            segments.append(np.concatenate(list(seg_blocks), axis=-1))
            segment_sizes.append(i - start)
            start = i
    arrangement = Arrangement(
        kind="adjacency",
        unit_size=block_set.unit_size,
        ndim=block_set.ndim,
        n_blocks=block_set.n_blocks,
        segments=tuple(segment_sizes),
    )
    return segments, arrangement


def split_merged(
    merged: Union[np.ndarray, Sequence[np.ndarray]],
    arrangement: Arrangement,
) -> np.ndarray:
    """Invert any merge arrangement back into the ``(n_blocks, u, ...)`` block array."""
    u = arrangement.unit_size
    ndim = arrangement.ndim
    n = arrangement.n_blocks

    if arrangement.kind == "linear":
        merged_arr = np.asarray(merged, dtype=np.float64)
        blocks = np.stack(np.split(merged_arr, n, axis=-1), axis=0)
        return blocks
    if arrangement.kind == "stack":
        merged_arr = np.asarray(merged, dtype=np.float64)
        from repro.utils.blocks import block_view

        grid = block_view(merged_arr, u)
        padded_blocks = grid.reshape((-1,) + (u,) * ndim)
        return padded_blocks[:n]
    if arrangement.kind == "adjacency":
        if isinstance(merged, np.ndarray):
            raise TypeError("adjacency arrangement expects a list of segment arrays")
        blocks_list = []
        for seg_arr, seg_n in zip(merged, arrangement.segments):
            blocks_list.extend(np.split(np.asarray(seg_arr, dtype=np.float64), seg_n, axis=-1))
        return np.stack(blocks_list, axis=0)
    raise ValueError(f"unknown arrangement kind {arrangement.kind!r}")
