"""Compression-error sampling (§III-B, §III-C).

Both the post-processing intensity search and the uncertainty model need to
know how a compressor behaves on the data *before* paying for a full
compression: the paper samples ``i^3`` blocks of size ``(j x blocksize)^3``
(about 1.5 % of the data), compresses and decompresses just those blocks, and
reuses the observed errors twice — once to pick the post-processing intensity
``a`` and once to estimate the per-voxel error distribution for probabilistic
marching cubes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.compressors.base import Compressor
from repro.utils.rng import default_rng

__all__ = ["SampledErrors", "sample_compression_errors"]


@dataclass
class SampledErrors:
    """Original and decompressed values of the sampled blocks.

    The per-block arrays keep their spatial shape so the Bezier post-process
    can be evaluated on them; flattened views are exposed for the statistics
    used by the uncertainty model.
    """

    original_blocks: np.ndarray  # (n_blocks, s, s[, s])
    decompressed_blocks: np.ndarray  # same shape
    error_bound: float
    sample_fraction: float
    block_shape: Tuple[int, ...]
    compressor_name: str

    @property
    def original(self) -> np.ndarray:
        return self.original_blocks.ravel()

    @property
    def decompressed(self) -> np.ndarray:
        return self.decompressed_blocks.ravel()

    @property
    def errors(self) -> np.ndarray:
        """Signed compression errors (decompressed - original)."""
        return self.decompressed - self.original

    @property
    def n_samples(self) -> int:
        return int(self.original_blocks.size)

    def error_mean(self) -> float:
        return float(self.errors.mean())

    def error_std(self) -> float:
        return float(self.errors.std())

    def max_abs_error(self) -> float:
        return float(np.abs(self.errors).max()) if self.n_samples else 0.0


def sample_compression_errors(
    data: np.ndarray,
    compressor: Compressor,
    error_bound: float,
    sampling_rate: float = 0.015,
    block_multiplier: int = 3,
    base_block_size: Optional[int] = None,
    seed: Union[int, str, None] = "error-sampling",
) -> SampledErrors:
    """Compress a small sample of blocks and record the resulting errors.

    Parameters
    ----------
    data:
        The array about to be compressed.
    compressor:
        The compressor that will be used (its observed error statistics are
        what we want).
    sampling_rate:
        Upper bound on the fraction of cells sampled (paper: < 1.5 %).
    block_multiplier:
        ``j`` in the paper: sample blocks have edge ``j * blocksize`` so they
        contain several compression blocks (necessary for the Bezier search).
    base_block_size:
        The compressor's block size; taken from ``compressor.block_size`` when
        available, else 4.
    """
    arr = np.asarray(data, dtype=np.float64)
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    if not 0 < sampling_rate <= 1:
        raise ValueError("sampling_rate must be in (0, 1]")
    if base_block_size is None:
        base_block_size = int(getattr(compressor, "block_size", 4))
    base_block_size = int(base_block_size)
    # Shrink the multiplier on small arrays so the sample stays close to the
    # requested budget, but never below 2 compression blocks per edge (the
    # Bezier search needs at least one internal block boundary).  At the
    # paper's 512^3 scale the requested multiplier is always feasible.
    budget_cells = sampling_rate * arr.size
    multiplier = max(2, int(block_multiplier))
    while multiplier > 2 and (multiplier * base_block_size) ** arr.ndim > budget_cells:
        multiplier -= 1
    sample_edge = max(2, multiplier * base_block_size)
    sample_edge = min(sample_edge, *arr.shape)
    block_shape = (sample_edge,) * arr.ndim
    cells_per_block = int(np.prod(block_shape))

    max_blocks = max(1, int(np.floor(sampling_rate * arr.size / cells_per_block)))
    rng = default_rng(seed)

    origins = []
    for _ in range(max_blocks):
        origin = tuple(
            int(rng.integers(0, s - e + 1)) if s > e else 0
            for s, e in zip(arr.shape, block_shape)
        )
        origins.append(origin)

    originals = np.empty((len(origins),) + block_shape, dtype=np.float64)
    decompressed = np.empty_like(originals)
    for i, origin in enumerate(origins):
        sl = tuple(slice(o, o + e) for o, e in zip(origin, block_shape))
        block = arr[sl]
        originals[i] = block
        result = compressor.roundtrip(block, error_bound)
        decompressed[i] = result.decompressed

    return SampledErrors(
        original_blocks=originals,
        decompressed_blocks=decompressed,
        error_bound=float(error_bound),
        sample_fraction=len(origins) * cells_per_block / arr.size,
        block_shape=block_shape,
        compressor_name=compressor.name,
    )
