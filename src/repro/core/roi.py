"""Compression-oriented ROI extraction (uniform -> adaptive data).

Following §III ("ROI selection and preprocessing"), the original uniform
dataset is partitioned into ``b^3`` blocks (``b = 2^n, n > 2``), each block is
scored by its value range, and the top-x% blocks become the region of
interest stored at full resolution; the remaining blocks are restricted to a
coarser level.  The result is an :class:`~repro.amr.grid.AMRHierarchy`
identical in structure to native AMR output, so everything downstream (unit
block partitioning, SZ3MR, post-processing) treats both the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.amr.refinement import (
    RefinementCriterion,
    ValueRangeCriterion,
    build_hierarchy_from_uniform,
)
from repro.utils.validation import ensure_array, ensure_in_range, ensure_power_of_two

__all__ = ["ROIResult", "extract_roi", "roi_preview_field"]


@dataclass
class ROIResult:
    """Outcome of ROI extraction.

    Attributes
    ----------
    hierarchy:
        Two-level adaptive hierarchy: level 0 (fine) owns the ROI blocks,
        level 1 (coarse) owns the rest at halved resolution.
    roi_fraction:
        Requested fraction of blocks kept at full resolution.
    block_size:
        Edge length of the scoring blocks.
    roi_mask:
        Boolean mask at full resolution marking the ROI cells.
    storage_reduction:
        Uniform cell count divided by multi-resolution cell count (the storage
        benefit of going adaptive *before* any lossy compression).
    """

    hierarchy: AMRHierarchy
    roi_fraction: float
    block_size: int
    roi_mask: np.ndarray
    storage_reduction: float


def extract_roi(
    data: np.ndarray,
    roi_fraction: float = 0.5,
    block_size: int = 8,
    criterion: Optional[RefinementCriterion] = None,
    refinement_ratio: int = 2,
) -> ROIResult:
    """Convert a uniform field into two-level adaptive data by ROI extraction.

    Parameters
    ----------
    data:
        Uniform 2-D or 3-D field whose axes are divisible by ``block_size``.
    roi_fraction:
        Fraction of blocks kept at full resolution (the paper's default is
        50 %, and 15 % suffices for the Nyx halo analysis of Fig. 4).
    block_size:
        ROI scoring block edge; the paper requires a power of two larger
        than 4.
    criterion:
        Block scoring strategy; value-range thresholding by default.
    """
    data = ensure_array(data, ndim=(2, 3), name="data")
    roi_fraction = ensure_in_range(roi_fraction, 0.0, 1.0, "roi_fraction", inclusive=True)
    block_size = ensure_power_of_two(block_size, "block_size", minimum=8)
    criterion = criterion or ValueRangeCriterion()

    hierarchy = build_hierarchy_from_uniform(
        data,
        n_levels=2,
        block_size=block_size,
        fractions=[roi_fraction, 1.0 - roi_fraction],
        criterion=criterion,
        refinement_ratio=refinement_ratio,
        metadata={"source": "roi_extraction", "roi_fraction": roi_fraction},
    )
    from repro.amr.reconstruct import level_footprint

    roi_mask = level_footprint(hierarchy, 0)
    return ROIResult(
        hierarchy=hierarchy,
        roi_fraction=float(roi_fraction),
        block_size=block_size,
        roi_mask=roi_mask,
        storage_reduction=hierarchy.storage_reduction(),
    )


def roi_preview_field(result: ROIResult, order: str = "nearest") -> np.ndarray:
    """Reconstruct a full-resolution field from the adaptive data.

    ROI cells keep their original values; non-ROI cells are prolonged from the
    coarse level.  Comparing this against the original field is how Fig. 4
    evaluates ROI extraction quality (SSIM = 0.99995 with a 15 % ROI).
    """
    return result.hierarchy.to_uniform(order=order)
