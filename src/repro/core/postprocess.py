"""Error-bounded adaptive Bezier post-processing (§III-B).

Block-wise compressors (SZ2, ZFP — and SZ3 once multi-resolution data has been
partitioned into unit blocks) lose the spatial relationship between
neighbouring blocks, producing blocking artefacts.  The paper's fix operates
purely on the decompressed data:

1. for every data point sitting on a block boundary, build a quadratic Bezier
   curve through its two axis-neighbours (one of which lives in the adjacent
   block) and move the point towards ``B(0.5) = 0.25*prev + 0.5*cur + 0.25*next``;
2. clamp the move to ``cur +/- a*eb`` so the result stays close to the
   (error-bounded) decompressed value;
3. choose the intensity ``a`` per axis from a small candidate set by compressing
   a ~1.5 % sample of the data and minimising the post-processed L2 error via
   a discrete gradient-descent search (the paper's "SGD" step).

:class:`PostProcessor` packages the three steps; :func:`bezier_boundary_smooth`
is the stateless kernel reused by the SZ3 multi-resolution path (where the
"blocks" are the 16^3 unit blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compressors.base import Compressor
from repro.core.sampling import SampledErrors, sample_compression_errors

__all__ = [
    "bezier_boundary_smooth",
    "PostProcessPlan",
    "PostProcessor",
    "DEFAULT_CANDIDATES",
]

#: Candidate intensity grids from §III-B.  ZFP's real error is typically far
#: below its bound ("underestimation"), hence the much smaller candidates.
DEFAULT_CANDIDATES: Dict[str, Tuple[float, ...]] = {
    "sz2": tuple(np.round(np.arange(0.05, 0.5001, 0.05), 3)),
    "sz3": tuple(np.round(np.arange(0.05, 0.5001, 0.05), 3)),
    "zfp": tuple(np.round(np.arange(0.005, 0.0501, 0.005), 4)),
}


def _boundary_indices(n: int, block_size: int) -> np.ndarray:
    """Indices of block-boundary points along an axis of length ``n``.

    Both sides of every internal block boundary are processed: the last point
    of block ``k`` (which uses its right neighbour from block ``k+1``) and the
    first point of block ``k+1`` (which uses its left neighbour from block
    ``k``).  End-of-domain points have no cross-block neighbour and are left
    untouched.
    """
    last_of_block = np.arange(block_size - 1, n - 1, block_size)
    first_of_block = np.arange(block_size, n - 1, block_size)
    idx = np.unique(np.concatenate([last_of_block, first_of_block]))
    return idx[(idx >= 1) & (idx <= n - 2)]


def bezier_boundary_smooth(
    decompressed: np.ndarray,
    block_size: int,
    error_bound: float,
    intensity: Union[float, Sequence[float]] = 0.3,
    axes: Optional[Sequence[int]] = None,
    reference: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Apply error-bounded quadratic Bezier smoothing at block boundaries.

    Parameters
    ----------
    decompressed:
        Decompressed array to improve.
    block_size:
        Block edge of the compressor that produced it (4 for ZFP and for SZ2
        on multi-resolution data, 6 for SZ2 on uniform data, the unit block
        size for partitioned SZ3).
    error_bound:
        The absolute error bound used during compression.
    intensity:
        Clamping intensity ``a`` (scalar, or one value per axis); the adjusted
        value never moves more than ``a * error_bound`` away from the
        decompressed value.
    axes:
        Axes to process (all by default).
    reference:
        Array the clamp is measured against; defaults to the *input*
        decompressed data so repeated smoothing cannot drift.
    """
    data = np.asarray(decompressed, dtype=np.float64)
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    if block_size < 2:
        raise ValueError("block_size must be at least 2")
    axes = tuple(range(data.ndim)) if axes is None else tuple(int(a) for a in axes)
    if np.isscalar(intensity):
        intensities = {axis: float(intensity) for axis in axes}
    else:
        intensity = list(intensity)
        if len(intensity) != len(axes):
            raise ValueError("need one intensity per processed axis")
        intensities = {axis: float(a) for axis, a in zip(axes, intensity)}
    for a in intensities.values():
        if not 0.0 <= a <= 1.0:
            raise ValueError("intensity must be within [0, 1]")

    ref = data if reference is None else np.asarray(reference, dtype=np.float64)
    out = data.copy()

    for axis in axes:
        n = out.shape[axis]
        idx = _boundary_indices(n, block_size)
        if idx.size == 0:
            continue
        a = intensities[axis]
        if a == 0.0:
            continue
        take = [slice(None)] * out.ndim

        def view(indices):
            sel = list(take)
            sel[axis] = indices
            return tuple(sel)

        prev = np.take(out, idx - 1, axis=axis)
        cur = np.take(out, idx, axis=axis)
        nxt = np.take(out, idx + 1, axis=axis)
        bezier = 0.25 * prev + 0.5 * cur + 0.25 * nxt

        ref_cur = np.take(ref, idx, axis=axis)
        lo = ref_cur - a * error_bound
        hi = ref_cur + a * error_bound
        adjusted = np.clip(bezier, lo, hi)

        out[view(idx)] = adjusted
    return out


@dataclass
class PostProcessPlan:
    """Result of the sampling + intensity-search stage.

    ``intensities`` holds one intensity per axis; ``gain_estimate`` is the
    relative L2-error reduction observed on the samples (negative values mean
    the plan decided post-processing would hurt and set the intensity to 0).
    """

    intensities: Tuple[float, ...]
    error_bound: float
    block_size: int
    compressor_kind: str
    candidates: Tuple[float, ...]
    sample_fraction: float
    gain_estimate: float
    sampled: Optional[SampledErrors] = field(default=None, repr=False)


class PostProcessor:
    """Error-bounded adaptive post-processing for block-wise compressors."""

    def __init__(
        self,
        compressor_kind: str = "zfp",
        block_size: Optional[int] = None,
        candidates: Optional[Sequence[float]] = None,
        sampling_rate: float = 0.015,
        block_multiplier: int = 3,
        strategy: str = "sgd",
        seed: Union[int, str, None] = "postprocess",
    ) -> None:
        kind = compressor_kind.lower()
        if kind not in DEFAULT_CANDIDATES:
            raise ValueError(f"compressor_kind must be one of {sorted(DEFAULT_CANDIDATES)}")
        if strategy not in ("sgd", "grid"):
            raise ValueError("strategy must be 'sgd' or 'grid'")
        self.compressor_kind = kind
        self.block_size = block_size
        chosen = DEFAULT_CANDIDATES[kind] if candidates is None else candidates
        self.candidates = tuple(float(c) for c in chosen)
        if not self.candidates:
            raise ValueError("candidate set must not be empty")
        self.sampling_rate = float(sampling_rate)
        self.block_multiplier = int(block_multiplier)
        self.strategy = strategy
        self.seed = seed

    # -- intensity search -----------------------------------------------------
    def _sample_cost(
        self, sampled: SampledErrors, block_size: int, axis: int, intensity: float
    ) -> float:
        """Sum of squared errors on the sampled blocks after smoothing ``axis``."""
        total = 0.0
        for orig, deco in zip(sampled.original_blocks, sampled.decompressed_blocks):
            processed = bezier_boundary_smooth(
                deco,
                block_size=block_size,
                error_bound=sampled.error_bound,
                intensity=intensity,
                axes=(axis,),
            )
            total += float(np.sum((processed - orig) ** 2))
        return total

    def _search_axis(self, sampled: SampledErrors, block_size: int, axis: int) -> Tuple[float, float]:
        """Best intensity for one axis; returns (intensity, cost)."""
        candidates = self.candidates
        baseline_cost = self._sample_cost(sampled, block_size, axis, 0.0)
        if self.strategy == "grid":
            costs = [self._sample_cost(sampled, block_size, axis, c) for c in candidates]
            best_idx = int(np.argmin(costs))
            best_cost = costs[best_idx]
        else:
            # Discrete gradient descent over the candidate grid: start in the
            # middle, keep moving towards the lower-cost neighbour.
            idx = len(candidates) // 2
            cost_cache: Dict[int, float] = {}

            def cost(i: int) -> float:
                if i not in cost_cache:
                    cost_cache[i] = self._sample_cost(sampled, block_size, axis, candidates[i])
                return cost_cache[i]

            for _ in range(len(candidates)):
                current = cost(idx)
                moves = [i for i in (idx - 1, idx + 1) if 0 <= i < len(candidates)]
                better = [i for i in moves if cost(i) < current]
                if not better:
                    break
                idx = min(better, key=cost)
            best_idx = idx
            best_cost = cost(idx)
        if best_cost >= baseline_cost:
            # Post-processing would not help on this axis; disable it.
            return 0.0, baseline_cost
        return float(candidates[best_idx]), float(best_cost)

    def plan(
        self,
        data: np.ndarray,
        compressor: Compressor,
        error_bound: float,
        block_size: Optional[int] = None,
    ) -> PostProcessPlan:
        """Sample the data, search the per-axis intensities and return the plan."""
        arr = np.asarray(data, dtype=np.float64)
        bs = block_size or self.block_size or int(getattr(compressor, "block_size", 4))
        sampled = sample_compression_errors(
            arr,
            compressor,
            error_bound,
            sampling_rate=self.sampling_rate,
            block_multiplier=self.block_multiplier,
            base_block_size=bs,
            seed=self.seed,
        )
        intensities = []
        total_before = float(np.sum(sampled.errors**2))
        total_after = 0.0
        for axis in range(arr.ndim):
            a, cost = self._search_axis(sampled, bs, axis)
            intensities.append(a)
            total_after += cost
        total_after /= max(1, arr.ndim)
        gain = 0.0 if total_before == 0 else 1.0 - total_after / total_before
        return PostProcessPlan(
            intensities=tuple(intensities),
            error_bound=float(error_bound),
            block_size=int(bs),
            compressor_kind=self.compressor_kind,
            candidates=self.candidates,
            sample_fraction=sampled.sample_fraction,
            gain_estimate=float(gain),
            sampled=sampled,
        )

    # -- application ------------------------------------------------------------
    def apply(self, decompressed: np.ndarray, plan: PostProcessPlan) -> np.ndarray:
        """Apply the planned per-axis smoothing to a decompressed array."""
        return bezier_boundary_smooth(
            decompressed,
            block_size=plan.block_size,
            error_bound=plan.error_bound,
            intensity=plan.intensities,
            axes=tuple(range(np.asarray(decompressed).ndim)),
        )

    def process(
        self,
        data: np.ndarray,
        compressor: Compressor,
        error_bound: float,
        block_size: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, PostProcessPlan]:
        """Convenience: full roundtrip + post-processing.

        Returns ``(decompressed, processed, plan)``.
        """
        plan = self.plan(data, compressor, error_bound, block_size=block_size)
        result = compressor.roundtrip(data, error_bound)
        processed = self.apply(result.decompressed, plan)
        return result.decompressed, processed, plan
