"""SZ3MR: the paper's optimized SZ3 for multi-resolution data.

SZ3MR = linear merge of unit blocks + dynamic padding of the two small
dimensions (improvement 1) + adaptive per-interpolation-level error bounds
with alpha = 2.25, beta = 8 (improvement 2), on top of the SZ3 interpolation
compressor.  :func:`sz3mr_variants` returns the exact set of configurations
plotted as curves in Figures 15, 17 and 18 (baseline, AMRIC, TAC, ours(pad),
ours(pad+eb)) so the benchmarks stay declarative.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.adaptive_eb import DEFAULT_ALPHA, DEFAULT_BETA
from repro.core.mr_compressor import MultiResolutionCompressor

__all__ = ["SZ3MRCompressor", "sz3mr_variants"]


class SZ3MRCompressor(MultiResolutionCompressor):
    """The paper's SZ3MR configuration of the multi-resolution engine."""

    def __init__(
        self,
        padding: Union[bool, str] = "auto",
        padding_mode: str = "linear",
        adaptive_eb: bool = True,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        unit_size: int = 16,
        compressor_options: Optional[Dict] = None,
    ) -> None:
        super().__init__(
            compressor="sz3",
            arrangement="linear",
            padding=padding,
            padding_mode=padding_mode,
            adaptive_eb=adaptive_eb,
            alpha=alpha,
            beta=beta,
            unit_size=unit_size,
            compressor_options=compressor_options,
        )


def sz3mr_variants(unit_size: int = 16, include_tac: bool = True) -> Dict[str, MultiResolutionCompressor]:
    """The SZ3 configurations compared throughout §IV.

    Keys match the curve labels used in the paper's figures:

    * ``"Baseline-SZ3"`` — linear merge, no padding, constant error bound;
    * ``"AMRIC-SZ3"`` — stack (cubic) merge, constant error bound;
    * ``"TAC-SZ3"`` — adjacency merge with per-segment compression (offline
      only in the paper; included here for the offline benchmarks);
    * ``"Ours (pad)"`` — linear merge + dynamic padding;
    * ``"Ours (pad+eb)"`` — padding + adaptive per-level error bounds (SZ3MR).
    """
    variants: Dict[str, MultiResolutionCompressor] = {
        "Baseline-SZ3": MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding=False, adaptive_eb=False, unit_size=unit_size
        ),
        "AMRIC-SZ3": MultiResolutionCompressor(
            compressor="sz3", arrangement="stack", padding=False, adaptive_eb=False, unit_size=unit_size
        ),
        "Ours (pad)": MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding="auto", adaptive_eb=False, unit_size=unit_size
        ),
        "Ours (pad+eb)": SZ3MRCompressor(unit_size=unit_size),
    }
    if include_tac:
        variants["TAC-SZ3"] = MultiResolutionCompressor(
            compressor="sz3", arrangement="adjacency", padding=False, adaptive_eb=False, unit_size=unit_size
        )
    return variants
