"""Dynamic padding of the merged array (SZ3MR improvement 1, §III-A).

The linear merge of unit blocks produces an array with two small dimensions
of size ``u = 2^n`` and one long dimension.  SZ3's interpolation extrapolates
at the far end of every ``2^n``-sized axis (Fig. 7), so one extra layer is
appended to each small axis — turning them into ``2^n + 1`` points, for which
no interior point needs extrapolation (Fig. 8).  The pad layer value is
extrapolated from the data (constant, linear or quadratic; the paper finds
linear best) and simply cropped away after decompression.

Padding costs ``(u+1)^2 / u^2`` extra samples, which is why the paper only
applies it when ``u > 4``; :func:`should_pad` encodes that rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "PadInfo",
    "pad_small_dimensions",
    "unpad",
    "padding_overhead",
    "should_pad",
    "PAD_MODES",
]

PAD_MODES = ("constant", "linear", "quadratic")


@dataclass(frozen=True)
class PadInfo:
    """Record of which axes were padded (needed to crop after decompression)."""

    axes: Tuple[int, ...]
    original_shape: Tuple[int, ...]
    mode: str


def _extrapolate_layer(array: np.ndarray, axis: int, mode: str) -> np.ndarray:
    """One extrapolated layer beyond the end of ``axis`` (keeps that axis, size 1)."""
    n = array.shape[axis]

    def take(idx: int) -> np.ndarray:
        sl = [slice(None)] * array.ndim
        sl[axis] = slice(idx, idx + 1)
        return array[tuple(sl)]

    last = take(n - 1)
    if mode == "constant" or n < 2:
        return last.copy()
    second = take(n - 2)
    if mode == "linear" or n < 3:
        return 2.0 * last - second
    third = take(n - 3)
    # Quadratic (three-point) forward extrapolation.
    return 3.0 * last - 3.0 * second + third


def pad_small_dimensions(
    array: np.ndarray,
    mode: str = "linear",
    n_axes: int = 2,
) -> Tuple[np.ndarray, PadInfo]:
    """Append one extrapolated layer to the ``n_axes`` smallest axes.

    For the 3-D linear-merge layout (``u x u x u*n``) the two smallest axes
    are the unit-block axes, exactly what §III-A pads.
    """
    data = np.asarray(array, dtype=np.float64)
    if mode not in PAD_MODES:
        raise ValueError(f"mode must be one of {PAD_MODES}, got {mode!r}")
    n_axes = int(n_axes)
    if not 1 <= n_axes <= data.ndim:
        raise ValueError(f"n_axes must be in [1, {data.ndim}]")

    # Smallest axes first; ties broken by axis index for determinism.
    order = np.argsort(np.array(data.shape, dtype=np.int64), kind="stable")
    axes = tuple(sorted(int(a) for a in order[:n_axes]))

    padded = data
    for axis in axes:
        layer = _extrapolate_layer(padded, axis, mode)
        padded = np.concatenate([padded, layer], axis=axis)
    info = PadInfo(axes=axes, original_shape=data.shape, mode=mode)
    return padded, info


def unpad(array: np.ndarray, info: PadInfo) -> np.ndarray:
    """Crop a padded array back to its original shape."""
    data = np.asarray(array)
    slices = [slice(None)] * data.ndim
    for axis, original in enumerate(info.original_shape):
        slices[axis] = slice(0, int(original))
    out = data[tuple(slices)]
    if out.shape != info.original_shape:
        raise ValueError(
            f"cannot unpad array of shape {data.shape} to original {info.original_shape}"
        )
    return np.ascontiguousarray(out)


def padding_overhead(unit_size: int, n_axes: int = 2) -> float:
    """Relative size increase of padding ``n_axes`` axes of length ``unit_size``.

    For the default two axes this is the paper's ``(u+1)^2 / u^2`` (e.g. 56 %
    for u = 4, 13 % for u = 16).
    """
    u = int(unit_size)
    if u < 1:
        raise ValueError("unit_size must be positive")
    return float((u + 1) ** n_axes) / float(u**n_axes) - 1.0


def should_pad(unit_size: int, threshold: int = 4) -> bool:
    """Paper rule: apply padding only when the unit block size exceeds ``threshold``."""
    return int(unit_size) > int(threshold)
