"""Multi-resolution compression engine.

This is the machinery every curve of Figures 15-18 shares: take one
resolution level of a multi-resolution dataset, cut its occupied region into
unit blocks (:mod:`repro.core.partition`), arrange the blocks into one or more
dense arrays (linear / stack / adjacency merge), optionally pad the small
dimensions (:mod:`repro.core.padding`), and hand the result to an
error-bounded compressor (optionally with adaptive per-level error bounds for
SZ3).  The same object also decompresses and reassembles the level, so
baselines (AMRIC, TAC, original SZ3) and the paper's SZ3MR are just different
constructor arguments — see :mod:`repro.core.sz3mr` and
:mod:`repro.baselines`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.api.error_bound import ErrorBound
from repro.compressors import SZ2Compressor, SZ3Compressor, ZFPCompressor
from repro.compressors.base import CompressedArray, Compressor
from repro.core.adaptive_eb import DEFAULT_ALPHA, DEFAULT_BETA, adaptive_level_error_bounds
from repro.core.padding import PadInfo, pad_small_dimensions, should_pad, unpad
from repro.core.partition import (
    ARRANGEMENTS,
    Arrangement,
    UnitBlockSet,
    adjacency_merge,
    extract_unit_blocks,
    linear_merge,
    scatter_unit_blocks,
    split_merged,
    stack_merge,
)

__all__ = [
    "MultiResolutionCompressor",
    "CompressedLevel",
    "CompressedHierarchy",
    "PreparedLevel",
]

_COMPRESSOR_CHOICES = ("sz3", "sz2", "zfp")

#: Block size AMRIC found optimal when running SZ2 on multi-resolution data.
_SZ2_MULTIRES_BLOCK = 4


@dataclass
class PreparedLevel:
    """Pre-processed (but not yet encoded) level: merged arrays + bookkeeping.

    Splitting preparation (unit-block extraction, arrangement, padding — the
    "collecting data to the compression buffer" cost of Table IV) from
    encoding (compression proper) lets the in-situ pipeline time the two
    stages separately, mirroring the paper's output-time breakdown.
    """

    level_index: int
    merged: List[np.ndarray]
    arrangement: Arrangement
    pad_info: Optional[PadInfo]
    coords: np.ndarray
    level_shape: Tuple[int, ...]
    unit_size: int
    n_blocks: int

    @property
    def nbytes_original(self) -> int:
        ndim = len(self.level_shape)
        return self.n_blocks * (self.unit_size**ndim) * 8


@dataclass
class CompressedLevel:
    """Compressed representation of one resolution level."""

    level: int
    payloads: List[CompressedArray]
    arrangement: Arrangement
    pad_info: Optional[PadInfo]
    coords_payload: bytes
    level_shape: Tuple[int, ...]
    unit_size: int
    nbytes_original: int

    @property
    def nbytes_compressed(self) -> int:
        return sum(p.nbytes_compressed for p in self.payloads) + len(self.coords_payload)

    @property
    def compression_ratio(self) -> float:
        return self.nbytes_original / max(1, self.nbytes_compressed)


@dataclass
class CompressedHierarchy:
    """Compressed representation of a whole multi-resolution hierarchy."""

    levels: List[CompressedLevel]
    error_bound: float
    metadata: Dict = field(default_factory=dict)

    @property
    def nbytes_original(self) -> int:
        return sum(l.nbytes_original for l in self.levels)

    @property
    def nbytes_compressed(self) -> int:
        return sum(l.nbytes_compressed for l in self.levels)

    @property
    def compression_ratio(self) -> float:
        return self.nbytes_original / max(1, self.nbytes_compressed)


class MultiResolutionCompressor:
    """Compress multi-resolution (AMR / adaptive) data level by level.

    Parameters
    ----------
    compressor:
        ``"sz3"`` (global interpolation), ``"sz2"`` (block prediction, 4^3
        blocks as AMRIC recommends for multi-resolution data) or ``"zfp"``.
    arrangement:
        Unit-block arrangement: ``"linear"`` (baseline / ours), ``"stack"``
        (AMRIC) or ``"adjacency"`` (TAC-like, per-segment compression).
    padding:
        ``True`` / ``False`` or ``"auto"`` (paper rule: pad only when the unit
        block size exceeds 4).  Padding only applies to the linear arrangement.
    padding_mode:
        Pad-layer extrapolation: ``"constant"``, ``"linear"`` (paper default)
        or ``"quadratic"``.
    adaptive_eb:
        Use the per-interpolation-level error bound schedule (SZ3 only).
    unit_size:
        Unit block edge length used to partition each level (16 by default,
        the value quoted in §IV-B).
    """

    def __init__(
        self,
        compressor: str = "sz3",
        arrangement: str = "linear",
        padding: Union[bool, str] = "auto",
        padding_mode: str = "linear",
        pad_threshold: int = 4,
        adaptive_eb: bool = False,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        unit_size: int = 16,
        compressor_options: Optional[Dict] = None,
    ) -> None:
        if compressor not in _COMPRESSOR_CHOICES:
            raise ValueError(f"compressor must be one of {_COMPRESSOR_CHOICES}")
        if arrangement not in ARRANGEMENTS:
            raise ValueError(f"arrangement must be one of {ARRANGEMENTS}")
        if padding not in (True, False, "auto"):
            raise ValueError("padding must be True, False or 'auto'")
        self.compressor_kind = compressor
        self.arrangement = arrangement
        self.padding = padding
        self.padding_mode = padding_mode
        self.pad_threshold = int(pad_threshold)
        self.adaptive_eb = bool(adaptive_eb)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.unit_size = int(unit_size)
        self.compressor_options = dict(compressor_options or {})
        self._codec = self._build_codec()

    # -- codec construction ---------------------------------------------------
    def _build_codec(self) -> Compressor:
        options = dict(self.compressor_options)
        if self.compressor_kind == "sz3":
            if self.adaptive_eb:
                options.setdefault(
                    "level_error_bounds", adaptive_level_error_bounds(self.alpha, self.beta)
                )
            self._codec_options = options
            return SZ3Compressor(**options)
        if self.compressor_kind == "sz2":
            options.setdefault("block_size", _SZ2_MULTIRES_BLOCK)
            self._codec_options = options
            return SZ2Compressor(**options)
        self._codec_options = options
        return ZFPCompressor(**options)

    @property
    def codec(self) -> Compressor:
        """The underlying single-array compressor."""
        return self._codec

    def codec_spec(self) -> Tuple[str, Dict]:
        """Registry name and resolved constructor options of the codec.

        The pair is plain picklable data, so a worker process (or the
        :mod:`repro.store` codec engine) can rebuild an identical codec with
        ``get_compressor(kind, **options)`` without shipping this object.
        """
        return self.compressor_kind, dict(self._codec_options)

    def _padding_enabled(self, unit_size: int) -> bool:
        if self.arrangement != "linear" or self.compressor_kind != "sz3":
            return False
        if self.padding == "auto":
            return should_pad(unit_size, self.pad_threshold)
        return bool(self.padding)

    # -- level API --------------------------------------------------------------
    def prepare_level(
        self,
        level_data: np.ndarray,
        mask: Optional[np.ndarray],
        level_index: int = 0,
        unit_size: Optional[int] = None,
    ) -> PreparedLevel:
        """Pre-process one level: unit blocks -> arrangement -> (padding).

        This is the "collect data to the compression buffer" stage whose cost
        Table IV reports separately from compression + writing.
        """
        u = unit_size if unit_size is not None else self.unit_size
        block_set = extract_unit_blocks(level_data, mask=mask, unit_size=u)
        u = block_set.unit_size

        if self.arrangement == "linear":
            merged, arrangement = linear_merge(block_set)
            merged_list = [merged]
        elif self.arrangement == "stack":
            merged, arrangement = stack_merge(block_set)
            merged_list = [merged]
        else:
            merged_list, arrangement = adjacency_merge(block_set)

        pad_info: Optional[PadInfo] = None
        if self._padding_enabled(u):
            padded, pad_info = pad_small_dimensions(merged_list[0], mode=self.padding_mode)
            merged_list = [padded]
        return PreparedLevel(
            level_index=int(level_index),
            merged=list(merged_list),
            arrangement=arrangement,
            pad_info=pad_info,
            coords=block_set.coords,
            level_shape=block_set.level_shape,
            unit_size=u,
            n_blocks=block_set.n_blocks,
        )

    # -- per-block API (the substrate of the repro.store v2 container) ----------
    def prepare_unit_blocks(
        self,
        level_data: np.ndarray,
        mask: Optional[np.ndarray],
        unit_size: Optional[int] = None,
    ) -> UnitBlockSet:
        """Cut one level into Morton-ordered unit blocks without merging them.

        Unlike :meth:`prepare_level` the blocks are kept separate so each can
        be encoded into its own payload; that is what gives the block store
        random access (decode only the blocks a query touches) at the price
        of per-block compression overhead.
        """
        u = unit_size if unit_size is not None else self.unit_size
        return extract_unit_blocks(level_data, mask=mask, unit_size=u)

    def encode_unit_blocks(
        self, block_set: UnitBlockSet, error_bound: float
    ) -> List[CompressedArray]:
        """Encode every unit block into its own standalone payload, serially.

        For pool-backed batch encoding use
        :class:`repro.store.engine.CodecEngine`, which rebuilds this codec in
        its workers from :meth:`codec_spec`.
        """
        eb = float(error_bound)
        return [self._codec.compress(block, eb) for block in block_set.blocks]

    def decode_unit_block(self, compressed: CompressedArray) -> np.ndarray:
        """Decode one standalone unit-block payload back to its array."""
        return self._codec.decompress(compressed)

    def encode_prepared(self, prepared: PreparedLevel, error_bound: float) -> CompressedLevel:
        """Encode a prepared level with the underlying error-bounded compressor."""
        payloads = [self._codec.compress(arr, error_bound) for arr in prepared.merged]
        coords_payload = zlib.compress(prepared.coords.astype("<i4").tobytes(), 6)
        return CompressedLevel(
            level=prepared.level_index,
            payloads=payloads,
            arrangement=prepared.arrangement,
            pad_info=prepared.pad_info,
            coords_payload=coords_payload,
            level_shape=prepared.level_shape,
            unit_size=prepared.unit_size,
            nbytes_original=prepared.nbytes_original,
        )

    def compress_level(
        self,
        level_data: np.ndarray,
        mask: Optional[np.ndarray],
        error_bound: Union[float, ErrorBound, Mapping],
        level_index: int = 0,
        unit_size: Optional[int] = None,
    ) -> CompressedLevel:
        """Compress one resolution level.

        An :class:`~repro.api.error_bound.ErrorBound` spec is resolved
        against this level's data; a bare float is an absolute bound.
        """
        if isinstance(error_bound, (ErrorBound, Mapping)):
            error_bound = ErrorBound.coerce(error_bound).resolve(level_data)
        prepared = self.prepare_level(
            level_data, mask, level_index=level_index, unit_size=unit_size
        )
        return self.encode_prepared(prepared, error_bound)

    def decompress_level(self, compressed: CompressedLevel) -> np.ndarray:
        """Reconstruct the (full-domain) level array from a compressed level.

        Cells outside the occupied unit blocks are zero.
        """
        decompressed = [self._codec.decompress(p) for p in compressed.payloads]
        if compressed.pad_info is not None:
            decompressed = [unpad(decompressed[0], compressed.pad_info)]
        if compressed.arrangement.kind == "adjacency":
            blocks = split_merged(decompressed, compressed.arrangement)
        else:
            blocks = split_merged(decompressed[0], compressed.arrangement)

        coords = np.frombuffer(
            zlib.decompress(compressed.coords_payload), dtype="<i4"
        ).reshape(-1, len(compressed.level_shape)).astype(np.int64)
        block_set = UnitBlockSet(
            blocks=blocks,
            coords=coords,
            unit_size=compressed.unit_size,
            level_shape=compressed.level_shape,
        )
        return scatter_unit_blocks(block_set)

    # -- hierarchy API -----------------------------------------------------------
    @staticmethod
    def resolve_hierarchy_bound(
        hierarchy: AMRHierarchy, error_bound: Union[ErrorBound, Mapping]
    ) -> float:
        """Resolve an :class:`ErrorBound` spec against a whole hierarchy.

        Relative modes use the global value range / peak magnitude across
        all levels, so the same spec means the same absolute bound no matter
        how the field was partitioned.
        """
        spec = ErrorBound.coerce(error_bound)
        if not spec.needs_statistics:
            return spec.value
        if spec.mode == "ptw_rel":
            value_range = 0.0
            peak = max(float(np.abs(lvl.data).max()) for lvl in hierarchy.levels)
        else:
            lo = min(float(lvl.data.min()) for lvl in hierarchy.levels)
            hi = max(float(lvl.data.max()) for lvl in hierarchy.levels)
            value_range, peak = hi - lo, 0.0
        return float(spec.resolve_range(value_range, peak))

    def compress_hierarchy(
        self,
        hierarchy: AMRHierarchy,
        error_bound: Union[float, Sequence[float], ErrorBound, Mapping],
        unit_size: Optional[int] = None,
    ) -> CompressedHierarchy:
        """Compress every level of a hierarchy.

        ``error_bound`` is a single absolute bound applied to every level, a
        sequence with one bound per level (fine to coarse), or an
        :class:`~repro.api.error_bound.ErrorBound` spec resolved against the
        hierarchy's global statistics.
        """
        if isinstance(error_bound, (ErrorBound, Mapping)):
            error_bound = self.resolve_hierarchy_bound(hierarchy, error_bound)
        if np.isscalar(error_bound):
            bounds = [float(error_bound)] * hierarchy.n_levels
        else:
            bounds = [float(e) for e in error_bound]
            if len(bounds) != hierarchy.n_levels:
                raise ValueError("need one error bound per level")
        levels = []
        for lvl, eb in zip(hierarchy.levels, bounds):
            levels.append(
                self.compress_level(
                    lvl.data, lvl.mask, eb, level_index=lvl.level, unit_size=unit_size
                )
            )
        return CompressedHierarchy(
            levels=levels,
            error_bound=bounds[0],
            metadata={
                "compressor": self.compressor_kind,
                "arrangement": self.arrangement,
                "adaptive_eb": self.adaptive_eb,
                "unit_size": unit_size or self.unit_size,
                "level_error_bounds": bounds,
            },
        )

    def decompress_hierarchy(
        self, compressed: CompressedHierarchy, template: AMRHierarchy
    ) -> AMRHierarchy:
        """Rebuild a hierarchy from compressed levels.

        ``template`` supplies the ownership masks (the compressed stream keeps
        only the occupied-block coordinates); values outside the occupied
        blocks are zero and are never owned.
        """
        if len(compressed.levels) != template.n_levels:
            raise ValueError("compressed hierarchy and template have different level counts")
        new_data = [self.decompress_level(lvl) for lvl in compressed.levels]
        return template.copy_with_data(new_data)

    # -- convenience --------------------------------------------------------------
    def roundtrip_hierarchy(
        self,
        hierarchy: AMRHierarchy,
        error_bound: Union[float, Sequence[float], ErrorBound, Mapping],
        unit_size: Optional[int] = None,
    ) -> Tuple[CompressedHierarchy, AMRHierarchy]:
        """Compress and immediately decompress a hierarchy."""
        compressed = self.compress_hierarchy(hierarchy, error_bound, unit_size=unit_size)
        return compressed, self.decompress_hierarchy(compressed, hierarchy)

    def describe(self) -> str:
        """Short human-readable configuration string (used by benchmark tables)."""
        bits = [self.compressor_kind, self.arrangement]
        if self._padding_enabled(self.unit_size):
            bits.append(f"pad:{self.padding_mode}")
        if self.adaptive_eb and self.compressor_kind == "sz3":
            bits.append(f"adaptive-eb(a={self.alpha},b={self.beta})")
        return "+".join(bits)
