"""Adaptive per-interpolation-level error bounds (SZ3MR improvement 2, §III-A).

Points predicted at early (coarse) interpolation levels seed the predictions
of every later level, so they deserve tighter error bounds.  Inspired by QoZ,
the paper uses

    eb_l = eb / min(alpha^(maxlevel - l), beta)

but fixes ``alpha = 2.25`` and ``beta = 8`` instead of searching for them,
exploiting the very anisotropic shapes produced by linear merge + padding
(e.g. 17 x 17 x 8192).  The schedule object below plugs straight into
:class:`repro.compressors.sz3.SZ3Compressor`'s ``level_error_bounds`` hook; in
that compressor's numbering level 1 is processed last (finest stride), so the
exponent is ``level - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AdaptiveErrorBoundSchedule",
    "adaptive_level_error_bounds",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
]

#: Paper-recommended constants (§III-A, improvement 2).
DEFAULT_ALPHA = 2.25
DEFAULT_BETA = 8.0


@dataclass(frozen=True)
class AdaptiveErrorBoundSchedule:
    """Callable mapping ``(level, max_level, base_eb)`` to the level's error bound.

    ``level`` follows the convention of
    :mod:`repro.compressors.interpolation`: it counts down from ``max_level``
    (coarsest stride, predicted first) to 1 (finest stride, predicted last).
    The finest level always receives the full user error bound; earlier levels
    are tightened geometrically by ``alpha`` and capped at ``base_eb / beta``.
    """

    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA

    def __post_init__(self) -> None:
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        if self.beta < 1.0:
            raise ValueError("beta must be >= 1")

    def __call__(self, level: int, max_level: int, base_eb: float) -> float:
        if level < 1:
            raise ValueError("level must be >= 1")
        levels_after_this = level - 1
        divisor = min(self.alpha**levels_after_this, self.beta)
        return float(base_eb) / divisor


def adaptive_level_error_bounds(
    alpha: float = DEFAULT_ALPHA, beta: float = DEFAULT_BETA
) -> AdaptiveErrorBoundSchedule:
    """Factory for the paper's adaptive error-bound schedule."""
    return AdaptiveErrorBoundSchedule(alpha=alpha, beta=beta)
