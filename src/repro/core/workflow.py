"""End-to-end workflow facade (Fig. 3).

The :class:`MultiResolutionWorkflow` ties the pieces together the way the
paper's Fig. 3 draws them:

1. uniform data -> ROI extraction -> adaptive multi-resolution data
   (skipped for native AMR input);
2. per level: unit-block partition -> arrangement -> (padding) -> error-bounded
   compression (SZ3MR / SZ2 / ZFP), with error sampling on the side;
3. after decompression: error-bounded Bezier post-processing;
4. optionally: a compression-uncertainty model for probabilistic isosurface
   visualization.

The result object carries the compressed payloads, the reconstructed field,
its post-processed version and the headline quality metrics (CR, PSNR, SSIM),
which is what every example and most benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.api.error_bound import ErrorBound
from repro.analysis.metrics import psnr as psnr_metric
from repro.analysis.ssim import ssim as ssim_metric
from repro.core.mr_compressor import CompressedHierarchy, MultiResolutionCompressor
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth
from repro.core.roi import ROIResult, extract_roi
from repro.core.uncertainty import CompressionUncertaintyModel

__all__ = ["MultiResolutionWorkflow", "WorkflowResult"]


@dataclass
class WorkflowResult:
    """Everything produced by one workflow run on one field."""

    compressed: CompressedHierarchy
    hierarchy: AMRHierarchy
    decompressed_field: np.ndarray
    processed_field: Optional[np.ndarray]
    roi: Optional[ROIResult]
    error_bound: float
    compression_ratio: float
    psnr: float
    ssim: float
    psnr_processed: Optional[float]
    ssim_processed: Optional[float]
    uncertainty: Optional[CompressionUncertaintyModel]

    @property
    def best_field(self) -> np.ndarray:
        """Post-processed reconstruction when available, else the raw one."""
        return self.processed_field if self.processed_field is not None else self.decompressed_field

    @property
    def decompressed(self) -> np.ndarray:
        """Alias so the result can be used with :func:`repro.analysis.rate_distortion_curve`."""
        return self.best_field


class MultiResolutionWorkflow:
    """High-level driver of the full multi-resolution compression workflow."""

    def __init__(
        self,
        compressor: Union[str, MultiResolutionCompressor] = "sz3",
        arrangement: str = "linear",
        padding: Union[bool, str] = "auto",
        adaptive_eb: bool = True,
        roi_fraction: float = 0.5,
        roi_block_size: int = 8,
        unit_size: int = 16,
        postprocess: bool = True,
        postprocess_strategy: str = "sgd",
        uncertainty: bool = False,
        compressor_options: Optional[Dict] = None,
    ) -> None:
        if isinstance(compressor, MultiResolutionCompressor):
            # A fully-configured engine (e.g. from repro.api.CodecSpec.build())
            # takes precedence over the per-knob constructor arguments.
            self.mr = compressor
        else:
            self.mr = MultiResolutionCompressor(
                compressor=compressor,
                arrangement=arrangement,
                padding=padding,
                adaptive_eb=adaptive_eb,
                unit_size=unit_size,
                compressor_options=compressor_options,
            )
        self.roi_fraction = float(roi_fraction)
        self.roi_block_size = int(roi_block_size)
        self.unit_size = int(self.mr.unit_size)
        self.postprocess = bool(postprocess)
        self.uncertainty = bool(uncertainty)
        self._postprocessor = PostProcessor(
            compressor_kind=self.mr.compressor_kind, strategy=postprocess_strategy
        )

    @classmethod
    def from_config(cls, config) -> "MultiResolutionWorkflow":
        """Build a workflow from a :class:`repro.api.WorkflowConfig`."""
        return config.build()

    # -- public entry points ----------------------------------------------------
    def compress_uniform(
        self, data: np.ndarray, error_bound: Union[float, ErrorBound, Dict[str, Any]]
    ) -> WorkflowResult:
        """Run the full workflow on uniform data (ROI extraction included).

        ``error_bound`` is an :class:`~repro.api.error_bound.ErrorBound`
        spec (or its dict form), resolved against ``data``; a bare float is
        an absolute bound.
        """
        original = np.asarray(data, dtype=np.float64)
        roi = extract_roi(
            original, roi_fraction=self.roi_fraction, block_size=self.roi_block_size
        )
        return self._run(roi.hierarchy, error_bound, original_field=original, roi=roi)

    def compress_hierarchy(
        self,
        hierarchy: AMRHierarchy,
        error_bound: Union[float, ErrorBound, Dict[str, Any]],
        original_field: Optional[np.ndarray] = None,
    ) -> WorkflowResult:
        """Run the workflow on native multi-resolution (AMR) data."""
        return self._run(hierarchy, error_bound, original_field=original_field, roi=None)

    # -- internals -----------------------------------------------------------------
    def _postprocess_block_size(self) -> int:
        if self.mr.compressor_kind in ("sz2", "zfp"):
            return int(getattr(self.mr.codec, "block_size", 4))
        # Partitioned SZ3: boundaries sit at unit-block edges.
        return self.unit_size

    def _run(
        self,
        hierarchy: AMRHierarchy,
        error_bound: Union[float, ErrorBound, Dict[str, Any]],
        original_field: Optional[np.ndarray],
        roi: Optional[ROIResult],
    ) -> WorkflowResult:
        reference = (
            np.asarray(original_field, dtype=np.float64)
            if original_field is not None
            else hierarchy.to_uniform()
        )
        if isinstance(error_bound, (ErrorBound, Mapping)):
            # Resolve against the original field when there is one; pure
            # hierarchies use the same global level statistics as the store
            # and in-situ paths, so every entry point yields the same bound.
            if original_field is not None:
                error_bound = float(ErrorBound.coerce(error_bound).resolve(reference))
            else:
                error_bound = self.mr.resolve_hierarchy_bound(hierarchy, error_bound)
        else:
            error_bound = float(error_bound)

        compressed = self.mr.compress_hierarchy(hierarchy, error_bound)
        decompressed_hierarchy = self.mr.decompress_hierarchy(compressed, hierarchy)
        decompressed_field = decompressed_hierarchy.to_uniform()

        processed_field = None
        psnr_processed = None
        ssim_processed = None
        if self.postprocess:
            block_size = self._postprocess_block_size()
            processed_levels = []
            for original_level, decompressed_level in zip(
                hierarchy.levels, decompressed_hierarchy.levels
            ):
                plan = self._postprocessor.plan(
                    original_level.data, self.mr.codec, error_bound, block_size=block_size
                )
                processed_levels.append(
                    bezier_boundary_smooth(
                        decompressed_level.data,
                        block_size=plan.block_size,
                        error_bound=error_bound,
                        intensity=plan.intensities,
                    )
                )
            processed_hierarchy = hierarchy.copy_with_data(processed_levels)
            processed_field = processed_hierarchy.to_uniform()
            psnr_processed = psnr_metric(reference, processed_field)
            ssim_processed = ssim_metric(reference, processed_field)

        uncertainty_model = None
        if self.uncertainty:
            uncertainty_model = CompressionUncertaintyModel.from_sampling(
                hierarchy.levels[0].data, self.mr.codec, error_bound
            )

        return WorkflowResult(
            compressed=compressed,
            hierarchy=decompressed_hierarchy,
            decompressed_field=decompressed_field,
            processed_field=processed_field,
            roi=roi,
            error_bound=error_bound,
            compression_ratio=compressed.compression_ratio,
            psnr=psnr_metric(reference, decompressed_field),
            ssim=ssim_metric(reference, decompressed_field),
            psnr_processed=psnr_processed,
            ssim_processed=ssim_processed,
            uncertainty=uncertainty_model,
        )
