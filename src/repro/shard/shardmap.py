"""``ShardMap``: deterministic placement of ``(field, step)`` onto N shards.

Consistent hashing on a ring of virtual nodes: each shard contributes
``virtual_nodes`` points at ``blake2b(f"{name}#{i}")``, an entry key
``field/stepNNNNN`` hashes to a point, and the entry lives on the shard
owning the first ring point at or after it.  Two properties make this the
right placement function for a routed store:

* **No central metadata.**  The map is a handful of shard names plus two
  integers; every router (and every human with the topology JSON) computes
  the same owner for every entry, so there is no placement table to keep
  consistent — the same move the paper's bounded Wang tilings make, where a
  small fixed rule set assembles arbitrarily large domains.
* **Minimal movement.**  Adding a shard steals only the ring arcs its new
  points land on: ≈ 1/N of the entries move, all of them *to* the new
  shard; removing one scatters only its own entries.  :func:`plan_rebalance`
  turns that difference into the literal list of entry moves.

Replication rides the same ring: with ``replicas=R`` an entry lives on the
R *distinct* ring successors of its hash point (:meth:`ShardMap.owners`),
so the replica set needs no extra metadata either and shifts minimally
when the topology changes.  ``owner()`` stays the first (primary) replica.

The hash is ``blake2b`` (stdlib, keyed by nothing) truncated to 64 bits —
stable across processes, platforms and Python versions, unlike ``hash()``
which is salted per process.  Serialization follows the :mod:`repro.api`
config idiom: strict ``to_dict``/``from_dict`` round-trips, unknown keys
rejected.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["ShardSpec", "ShardMap", "RebalanceMove", "plan_rebalance", "entry_key"]

DEFAULT_VIRTUAL_NODES = 64


def entry_key(field: str, step: int) -> str:
    """The catalog key — identical to ``Store``'s ``field/stepNNNNN``."""
    return f"{field}/{int(step):05d}"


def _point(token: str) -> int:
    """64-bit ring position of a token; stable everywhere."""
    return int.from_bytes(
        hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a stable name plus where to reach it.

    ``name`` is the ring identity — renaming a shard moves its entries;
    re-addressing it (new host/port, same name) moves nothing.  ``store``
    optionally pins the shard's store root for rebalancing CLI runs that
    operate on directories rather than daemons.
    """

    name: str
    address: str
    store: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "address": self.address}
        if self.store is not None:
            out["store"] = self.store
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        unknown = set(data) - {"name", "address", "store"}
        if unknown:
            raise ValueError(f"unknown ShardSpec keys: {sorted(unknown)}")
        if not data.get("name"):
            raise ValueError("a shard needs a non-empty name")
        if not data.get("address"):
            raise ValueError(f"shard {data.get('name')!r} needs an address")
        return cls(
            name=str(data["name"]),
            address=str(data["address"]),
            store=None if data.get("store") is None else str(data["store"]),
        )


class ShardMap:
    """Consistent-hash ring over named shards; the topology document.

    Parameters
    ----------
    shards:
        :class:`ShardSpec` instances (or their dicts).  Names must be
        unique — the name is the hash identity.
    virtual_nodes:
        Ring points per shard.  More points smooth the load split at the
        cost of a longer (still tiny) sorted ring; 64 keeps the imbalance
        across shards within a few percent for realistic catalogs.
    replicas:
        Copies per entry.  Each entry lives on the ``replicas`` distinct
        ring successors of its hash point; 1 (the default) reproduces the
        unreplicated PR 7 behaviour exactly.
    """

    def __init__(
        self,
        shards: Sequence[Union[ShardSpec, Mapping[str, Any]]],
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        replicas: int = 1,
    ) -> None:
        specs = [
            s if isinstance(s, ShardSpec) else ShardSpec.from_dict(s) for s in shards
        ]
        if not specs:
            raise ValueError("a shard map needs at least one shard")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names}")
        self.shards: Tuple[ShardSpec, ...] = tuple(specs)
        self.virtual_nodes = int(virtual_nodes)
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.replicas > len(specs):
            raise ValueError(
                f"replicas={self.replicas} exceeds shard count {len(specs)}"
            )
        ring: List[Tuple[int, str]] = []
        for spec in self.shards:
            for i in range(self.virtual_nodes):
                ring.append((_point(f"{spec.name}#{i}"), spec.name))
        # Ties (astronomically unlikely 64-bit collisions) resolve by name so
        # every process still agrees on the owner.
        ring.sort()
        self._ring_points = [p for p, _ in ring]
        self._ring_names = [n for _, n in ring]
        self._by_name = {s.name: s for s in self.shards}

    # -- placement -------------------------------------------------------------
    def owner(self, field: str, step: int) -> ShardSpec:
        """The primary shard an entry lives on (first of :meth:`owners`)."""
        return self._by_name[self.owner_name(field, step)]

    def owner_name(self, field: str, step: int) -> str:
        return self.owner_names(field, step)[0]

    def owners(self, field: str, step: int) -> List[ShardSpec]:
        """Every replica holding an entry, primary first."""
        return [self._by_name[n] for n in self.owner_names(field, step)]

    def owner_names(self, field: str, step: int) -> List[str]:
        """The ``replicas`` distinct ring successors of the entry's point.

        Walking the ring past the primary and keeping the first R *distinct*
        shard names is what makes the replica set stable: removing one shard
        promotes the next successor, everything else stays put.
        """
        point = _point(entry_key(field, step))
        start = bisect_left(self._ring_points, point)
        if start == len(self._ring_points):  # wrap past the last ring point
            start = 0
        names: List[str] = []
        n_points = len(self._ring_points)
        for offset in range(n_points):
            name = self._ring_names[(start + offset) % n_points]
            if name not in names:
                names.append(name)
                if len(names) == self.replicas:
                    break
        return names

    def replica_sets(self) -> List[frozenset]:
        """Every distinct replica set the ring can place an entry on.

        Walking the successor list from each ring point enumerates all the
        shard groups any key can hash to — the exhaustive answer to "which
        combinations of shard failures lose data": an entry is unreachable
        iff one of these sets is entirely down.  The router's health check
        uses exactly that test.
        """
        out = set()
        n_points = len(self._ring_points)
        for start in range(n_points):
            names: List[str] = []
            for offset in range(n_points):
                name = self._ring_names[(start + offset) % n_points]
                if name not in names:
                    names.append(name)
                    if len(names) == self.replicas:
                        break
            out.add(frozenset(names))
        return sorted(out, key=sorted)

    def spec(self, name: str) -> ShardSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no shard named {name!r}; shards: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        return [s.name for s in self.shards]

    def assign(
        self, entries: Sequence[Tuple[str, int]]
    ) -> Dict[str, List[Tuple[str, int]]]:
        """Group entries by owning shard (every shard present, even empty)."""
        out: Dict[str, List[Tuple[str, int]]] = {s.name: [] for s in self.shards}
        for field, step in entries:
            out[self.owner_name(field, step)].append((str(field), int(step)))
        return out

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "shardmap",
            "virtual_nodes": self.virtual_nodes,
            "replicas": self.replicas,
            "shards": [s.to_dict() for s in self.shards],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardMap":
        data = dict(data)
        kind = data.pop("type", "shardmap")
        if kind != "shardmap":
            raise ValueError(f"not a shard map (type={kind!r})")
        unknown = set(data) - {"virtual_nodes", "replicas", "shards"}
        if unknown:
            raise ValueError(f"unknown ShardMap keys: {sorted(unknown)}")
        return cls(
            shards=[ShardSpec.from_dict(s) for s in data.get("shards", [])],
            virtual_nodes=int(data.get("virtual_nodes", DEFAULT_VIRTUAL_NODES)),
            replicas=int(data.get("replicas", 1)),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n", "utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardMap":
        try:
            raw = json.loads(Path(path).read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: cannot read shard map ({exc})") from exc
        return cls.from_dict(raw)

    # -- comparison / repr -----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.shards == other.shards
            and self.virtual_nodes == other.virtual_nodes
            and self.replicas == other.replicas
        )

    def __hash__(self) -> int:
        return hash((self.shards, self.virtual_nodes, self.replicas))

    def __repr__(self) -> str:
        return (
            f"ShardMap([{', '.join(self.names())}], "
            f"virtual_nodes={self.virtual_nodes}, replicas={self.replicas})"
        )


@dataclass(frozen=True)
class RebalanceMove:
    """One entry relocation: ``field/step`` leaves ``source`` for ``dest``."""

    field: str
    step: int
    source: str
    dest: str

    @property
    def key(self) -> str:
        return entry_key(self.field, self.step)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "field": self.field,
            "step": self.step,
            "source": self.source,
            "dest": self.dest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RebalanceMove":
        unknown = set(data) - {"field", "step", "source", "dest"}
        if unknown:
            raise ValueError(f"unknown RebalanceMove keys: {sorted(unknown)}")
        return cls(
            field=str(data["field"]),
            step=int(data["step"]),
            source=str(data["source"]),
            dest=str(data["dest"]),
        )


def plan_rebalance(
    old: ShardMap, new: ShardMap, entries: Sequence[Tuple[str, int]]
) -> List[RebalanceMove]:
    """The minimal move list taking ``entries`` from ``old`` to ``new``.

    Minimal by construction: an entry appears iff its *replica set* differs
    between the maps, which consistent hashing keeps to ≈ |changed shards|
    / N of the catalog.  Each move's ``source`` is a shard that holds the
    entry under ``old``; ``dest`` is a shard that must hold it under
    ``new``.  Shards leaving an entry's replica set are paired as sources
    (so :func:`repro.shard.rebalance.execute_plan` can prune them after the
    copy); when more shards join than leave, the remaining copies come from
    the old primary.  With ``replicas=1`` on both maps this degenerates to
    exactly the PR 7 owner-differs move list.  Moves are sorted (by key) so
    plans are deterministic and diffable.
    """
    moves: List[RebalanceMove] = []
    for field, step in entries:
        old_set = old.owner_names(field, step)
        new_set = new.owner_names(field, step)
        gained = [name for name in new_set if name not in old_set]
        lost = [name for name in old_set if name not in new_set]
        if not gained and not lost:
            continue
        for i in range(max(len(gained), len(lost))):
            dest = gained[i] if i < len(gained) else new_set[0]
            source = lost[i] if i < len(lost) else old_set[0]
            moves.append(
                RebalanceMove(
                    field=str(field), step=int(step), source=source, dest=dest
                )
            )
    moves.sort(key=lambda m: (m.key, m.source, m.dest))
    return moves
