"""Per-backend circuit breakers: fail fast instead of hammering a dead shard.

The classic three-state machine, tuned for the router's replica failover:

* **closed** — traffic flows; ``threshold`` *consecutive* transport failures
  trip the breaker (one flaky exchange among successes never does).
* **open** — calls are rejected without touching the socket
  (:class:`BreakerOpenError`), so a request's failover to the next replica
  costs microseconds, not a connect timeout per retry.  After ``cooldown``
  seconds the breaker lets exactly one caller through as a probe.
* **half_open** — the probe is in flight.  Its success closes the breaker
  (and resets the failure count); its failure re-opens it and restarts the
  cooldown clock.

The router keeps one breaker per shard next to that shard's
:class:`~repro.serve.pool.ConnectionPool`, records every exchange outcome,
and a background prober turns half-open probes into automatic recovery even
when no client traffic is routed at the sick shard.  Counters (trips,
rejections, state) ship as ``repro_router_breaker_*`` metric families.

The decision is made entirely under the breaker's own lock with no I/O, so
it composes with the lock-order checker; the clock is injectable so tests
drive the cooldown deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict

from repro.serve.protocol import register_error_type

__all__ = ["BreakerOpenError", "CircuitBreaker", "BREAKER_STATES"]

#: State name -> numeric code for the ``repro_router_breaker_state`` gauge.
BREAKER_STATES = {"closed": 0, "half_open": 1, "open": 2}


@register_error_type
class BreakerOpenError(RuntimeError):
    """A backend call was rejected because its circuit breaker is open.

    Registered for typed transport (and mapped to HTTP 503 by the gateway):
    a client that sees it knows the router refused to try a shard it
    currently believes is down, rather than the shard failing mid-request.
    """


class CircuitBreaker:
    """Closed → open → half-open breaker around one backend.

    Parameters
    ----------
    name:
        Backend label, used in diagnostics only.
    threshold:
        Consecutive transport failures that trip a closed breaker.
    cooldown:
        Seconds an open breaker rejects before allowing a half-open probe.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        name: str,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = str(name)
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"  # repro: guarded-by(_lock)
        self._failures = 0  # repro: guarded-by(_lock)
        self._opened_at = 0.0  # repro: guarded-by(_lock)
        self._probing = False  # repro: guarded-by(_lock)
        self._counters = {  # repro: guarded-by(_lock)
            "trips": 0,
            "rejections": 0,
            "failures": 0,
            "successes": 0,
            "probes": 0,
        }

    # -- decisions ---------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed now; the half-open slot goes to one caller.

        Returns ``True`` from a closed breaker, and from an open one whose
        cooldown has lapsed — that caller *is* the probe, and the breaker
        moves to half-open until the caller reports back.  Everyone else is
        rejected until the probe resolves.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown
            ):
                self._state = "half_open"
            if self._state == "half_open" and not self._probing:
                self._probing = True
                self._counters["probes"] += 1
                return True
            self._counters["rejections"] += 1
            return False

    def record_success(self) -> None:
        """An exchange completed over healthy transport; close the breaker."""
        with self._lock:
            self._failures = 0
            self._probing = False
            self._state = "closed"

    def record_failure(self) -> bool:
        """A transport-level failure; returns whether this call tripped open.

        A half-open probe failing re-opens immediately; a closed breaker
        opens on the ``threshold``-th consecutive failure.  Re-opening also
        restarts the cooldown clock, so a backend that keeps failing probes
        stays open instead of flapping.
        """
        with self._lock:
            self._failures += 1
            was_open = self._state == "open"
            self._probing = False
            if self._state == "half_open" or (
                self._state == "closed" and self._failures >= self.threshold
            ):
                self._state = "open"
            if self._state == "open":
                self._opened_at = self._clock()
            tripped = self._state == "open" and not was_open
            if tripped:
                self._counters["trips"] += 1
            return tripped

    # -- introspection -----------------------------------------------------
    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (racy snapshot)."""
        with self._lock:
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown
            ):
                return "half_open"  # next allow() will admit the probe
            return self._state

    @property
    def state_code(self) -> int:
        """Numeric state for the breaker-state gauge."""
        return BREAKER_STATES[self.state]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = dict(self._counters)
            out["failures_consecutive"] = self._failures
            out["state"] = self._state
        return out

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"threshold={self.threshold}, cooldown={self.cooldown})"
        )
