"""``RouterDaemon``: one wire-protocol front door over N shard daemons.

The router speaks the exact :mod:`repro.serve` protocol on its front socket
— ``repro.connect()`` pointed at a router is bit-for-bit a single-daemon
client — and fans out over a small
:class:`~repro.serve.pool.ConnectionPool` of backend connections per shard
(``pool_size=``), so concurrent requests routed to the *same* shard relay in
parallel instead of serializing on one socket:

* ``catalog`` merges every shard's catalog into one entry list (preferring
  the owning shard's row for keys that transiently exist on two shards
  mid-rebalance);
* ``describe``/``read`` forward to the shard the :class:`ShardMap` names
  as the entry's owner.  The relay is zero-copy: the shard's response
  header is rewritten (spans merged), the ndarray payload is passed through
  untouched — the router never decodes, copies or even inspects result
  bytes;
* ``stats`` merges per-shard counters and registry snapshots, each stamped
  with a ``shard`` label (the router's own snapshot under
  ``shard="router"``), so one scrape sees every process;
* ``trace`` serves the router's own ring, which — because shard spans are
  grafted as responses relay through — holds the *complete* tree of every
  traced request: client root, router ``route`` span, shard fetch/decode.

Backend failures surface as typed :class:`ShardError` responses naming the
shard and address; application errors from a shard (a bad index, a missing
entry) relay verbatim so clients see exactly the error a single daemon
would have sent.  Backend connections dial under one
:class:`~repro.serve.client.ConnectSpec` (exponential backoff on refusal),
so launching a router alongside its shard daemons never races their binds,
and a poisoned pooled connection (shard restarted) is replaced
transparently on the next request that needs it.

The shard map is swappable live (:meth:`RouterDaemon.set_map`): rebalancing
installs the new topology between its copy and prune phases, so routed
reads never observe a missing entry.
"""

from __future__ import annotations

import logging
from numbers import Number
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import access_extra, label_snapshot, merge_snapshots
from repro.obs import span as obs_span
from repro.obs.tracing import current_trace
from repro.obs.collectors import counter_family, gauge_family
from repro.serve.client import ConnectSpec
from repro.serve.daemon import WireDaemon
from repro.serve.pool import ConnectionPool
from repro.serve.protocol import (
    ProtocolError,
    error_header,
    register_error_type,
)
from repro.shard.shardmap import ShardMap, entry_key

__all__ = ["RouterDaemon", "ShardError"]

log = logging.getLogger("repro.shard.router")


@register_error_type
class ShardError(RuntimeError):
    """A shard backend failed at the transport level (named in the message).

    Registered for typed transport: clients that imported :mod:`repro.shard`
    re-raise it exactly; others get the message via ``RemoteError``.
    Application errors from a shard are *not* wrapped — they relay with
    their original type and message.
    """


class RouterDaemon(WireDaemon):
    """Shard-fan-out daemon: one front socket, one connection pool per shard.

    Parameters
    ----------
    shard_map:
        The :class:`ShardMap` naming the shards and placing entries.
    host / port / backlog / tracer / slow_ms:
        See :class:`~repro.serve.daemon.WireDaemon`.
    timeout:
        Socket timeout of each backend connection.
    retries / backoff:
        Backend connect retry policy (one :class:`ConnectSpec` per shard);
        the default rides out a shard daemon that is still binding when the
        router starts.
    pool_size:
        Backend connections per shard.  One connection serializes concurrent
        requests routed to the same shard; a handful lets them relay in
        parallel (``bench_shard.py`` prices this).
    """

    _accept_thread_name = "repro-shard-router-accept"

    def __init__(
        self,
        shard_map: ShardMap,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 32,
        tracer=None,
        slow_ms: Optional[float] = None,
        timeout: float = 30.0,
        retries: int = 8,
        backoff: float = 0.05,
        pool_size: int = 4,
    ) -> None:
        super().__init__(
            host=host, port=port, backlog=backlog, tracer=tracer, slow_ms=slow_ms
        )
        self.shard_map = shard_map
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.pool_size = max(1, int(pool_size))
        self._pools: Dict[str, ConnectionPool] = {}  # repro: guarded-by(_lock)
        self._counters.update(
            {
                "reads_forwarded": 0,
                "relay_bytes": 0,
                "backend_errors": 0,
            }
        )

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> str:
        if self._listener is not None:
            return self.address
        # Dial one connection per shard before accepting clients: a
        # misconfigured topology fails here, loudly, not on the first
        # routed request.  The rest of each pool fills on demand.
        for spec in self.shard_map.shards:
            self._pool(spec.name).warm()
        return super().start()

    def stop(self, timeout: float = 5.0) -> None:
        super().stop(timeout)
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()

    def set_map(self, shard_map: ShardMap) -> None:
        """Install a new topology live; routed requests use it immediately.

        Pools of shards that left the map (or changed address) drain — idle
        connections close now, leased ones as their in-flight relays finish;
        new shards connect lazily on first forward.  Rebalancing calls this
        *between* copying entries to their new owners and pruning the old
        copies, so every entry is readable at its routed location throughout.
        """
        to_close: List[ConnectionPool] = []
        with self._lock:
            self.shard_map = shard_map
            live = {s.name: s for s in shard_map.shards}
            for name, pool in list(self._pools.items()):
                spec = live.get(name)
                if spec is None or pool.address != _normalize(spec.address):
                    to_close.append(self._pools.pop(name))
        for pool in to_close:
            pool.close()
        log.info(
            "shard map installed",
            extra=access_extra(shards=shard_map.names()),
        )

    def _pool(self, name: str) -> ConnectionPool:
        """The live connection pool for a shard, (re)creating as needed."""
        spec = self.shard_map.spec(name)
        with self._lock:
            pool = self._pools.get(name)
        if pool is not None and not pool.closed:
            return pool
        # Creating a pool opens no sockets, so losing the race below costs
        # nothing — the loser is dropped unused.
        fresh = ConnectionPool(
            ConnectSpec(
                spec.address,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
            ),
            size=self.pool_size,
            tracer=self.tracer,
        )
        with self._lock:
            current = self._pools.get(name)
            if current is not None and not current.closed:
                return current
            self._pools[name] = fresh
        return fresh

    def __repr__(self) -> str:
        bound = f"at {self._host}:{self._port}" if self._listener else "(not started)"
        return f"RouterDaemon({', '.join(self.shard_map.names())} {bound})"

    # -- request handling ------------------------------------------------------
    def _dispatch(self, header: Dict) -> Tuple[Dict, bytes]:
        op = header.get("op")
        with self._lock:
            self._counters["requests"] += 1
        try:
            if op == "catalog":
                return {"status": "ok", "entries": self._merged_catalog()}, b""
            if op == "describe":
                if header.get("field") is None:
                    return self._op_describe_store(), b""
                return self._forward_to_owner(header)
            if op == "read":
                resp, payload = self._forward_to_owner(header)
                with self._lock:
                    self._counters["reads_forwarded"] += 1
                    self._counters["relay_bytes"] += len(payload)
                return resp, payload
            if op == "stats":
                return self._op_stats(), b""
            if op == "trace":
                return self._op_trace(header), b""
            raise ValueError(
                f"unknown operation {op!r}; the router serves describe, catalog, "
                "read, stats and trace"
            )
        except Exception as exc:  # noqa: BLE001 - every failure becomes a response
            with self._lock:
                self._counters["errors"] += 1
            return error_header(exc), b""

    def _forward_to_owner(self, header: Dict) -> Tuple[Dict, bytes]:
        name = self.shard_map.owner_name(
            str(header["field"]), int(header.get("step", 0))
        )
        return self._forward(name, header)

    def _forward(self, name: str, header: Dict, payload: bytes = b"") -> Tuple[Dict, bytes]:
        """Relay one request to a shard; the response passes through zero-copy.

        Inside the ``route`` span the ambient trace points at *us*, so the
        forwarded header's ``trace`` is rewritten and the shard's request
        span parents on the route span — one tree across three processes.
        With the router's tracer disabled the client's original trace rides
        through untouched and the shard parents on the client directly.
        """
        op = header.get("op")
        spec = self.shard_map.spec(name)
        with obs_span("route", shard=name, op=op):
            forwarded = header
            wire_trace = current_trace()
            if wire_trace is not None:
                forwarded = {**header, "trace": wire_trace}
            try:
                with self._pool(name).lease() as backend:
                    resp, resp_payload = backend.exchange(forwarded, payload)
            except (OSError, ProtocolError) as exc:
                with self._lock:
                    self._counters["backend_errors"] += 1
                raise ShardError(
                    f"shard {name!r} at {spec.address} failed during {op!r}: {exc}"
                ) from exc
        spans = resp.pop("spans", None)
        if spans:
            if self.tracer.enabled:
                # The shard's half of the trace lands in the router's ring,
                # so the router's "trace" op shows complete trees.
                self.tracer.graft(spans)
            # ...and rides on to the client; the base request handler appends
            # the router's own spans behind these (span ids dedupe).
            resp["spans"] = spans
        return resp, resp_payload

    # -- merged ops ------------------------------------------------------------
    def _shard_request(self, name: str, header: Dict) -> Dict:
        """A routed *internal* request (catalog/stats); typed errors raise."""
        resp, _ = self._forward(name, header)
        if resp.get("status") != "ok":
            from repro.serve.protocol import raise_remote_error

            raise_remote_error(resp)
        return resp

    def _merged_catalog(self) -> List[Dict[str, Any]]:
        """Every shard's entries as one catalog, owner's row winning.

        Mid-rebalance an entry legitimately exists on two shards (copied to
        the destination, not yet pruned from the source); the merge keeps the
        row from the shard the current map routes reads to.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        for spec in self.shard_map.shards:
            resp = self._shard_request(spec.name, {"op": "catalog"})
            for row in resp.get("entries", ()):
                key = entry_key(str(row["field"]), int(row["step"]))
                owner = self.shard_map.owner_name(str(row["field"]), int(row["step"]))
                if key not in merged or owner == spec.name:
                    merged[key] = dict(row)
        return [merged[key] for key in sorted(merged)]

    def _op_describe_store(self) -> Dict[str, Any]:
        entries = self._merged_catalog()
        return {
            "status": "ok",
            "kind": "store",
            "root": f"shard-router[{','.join(self.shard_map.names())}]",
            "n_entries": len(entries),
            "fields": sorted({str(e["field"]) for e in entries}),
        }

    def _op_stats(self) -> Dict[str, Any]:
        """Fleet stats: summed counters, per-shard detail, labeled metrics.

        Top-level numeric counters sum across shards (so ``repro stats``
        against a router reads like one big daemon); ``shards`` keeps each
        daemon's full stats; ``router`` is the router's own accounting;
        ``metrics`` merges every process's registry snapshot with a
        ``shard`` label telling their series apart.
        """
        totals: Dict[str, float] = {}
        shards: Dict[str, Any] = {}
        snapshots = [label_snapshot(self._own_snapshot(), {"shard": "router"})]
        for spec in self.shard_map.shards:
            resp = self._shard_request(spec.name, {"op": "stats"})
            resp.pop("status", None)
            metrics = resp.pop("metrics", None)
            if metrics:
                snapshots.append(label_snapshot(metrics, {"shard": spec.name}))
            shards[spec.name] = resp
            for key, value in resp.items():
                if isinstance(value, Number) and not isinstance(value, bool):
                    totals[key] = totals.get(key, 0) + value
        return {
            "status": "ok",
            **totals,
            "router": self.stats(),
            "shards": shards,
            "metrics": merge_snapshots(*snapshots),
        }

    def _own_snapshot(self) -> List[Dict[str, Any]]:
        from repro.obs import REGISTRY

        return REGISTRY.snapshot()

    # -- introspection ---------------------------------------------------------
    def _collectors(self) -> List[Callable]:
        return [self._collect_families]

    def _collect_families(self) -> list:
        with self._lock:
            counters = dict(self._counters)
            active = len(self._connections)
            pools = list(self._pools.values())
        backends = sum(p.stats()["open"] for p in pools if not p.closed)
        return [
            counter_family("repro_router_requests_total",
                           "Requests dispatched by the shard router.",
                           counters["requests"]),
            counter_family("repro_router_reads_forwarded_total",
                           "Read operations relayed to a shard.",
                           counters["reads_forwarded"]),
            counter_family("repro_router_relay_bytes_total",
                           "Result payload bytes relayed shard-to-client.",
                           counters["relay_bytes"]),
            counter_family("repro_router_errors_total",
                           "Requests answered with a router-level error.",
                           counters["errors"]),
            counter_family("repro_router_backend_errors_total",
                           "Transport failures talking to shard backends.",
                           counters["backend_errors"]),
            counter_family("repro_router_connections_total",
                           "Client connections accepted since start.",
                           counters["connections"]),
            gauge_family("repro_router_active_connections",
                         "Client connections currently open.",
                         active),
            gauge_family("repro_router_backends_connected",
                         "Shard backend connections currently live.",
                         backends),
        ]

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["shards"] = self.shard_map.names()
        with self._lock:
            pools = dict(self._pools)
        out["pools"] = {name: pool.stats() for name, pool in pools.items()}
        return out


def _normalize(address: str) -> str:
    from repro.serve.daemon import parse_address

    host, port = parse_address(address)
    return f"{host}:{port}"
