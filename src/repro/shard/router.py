"""``RouterDaemon``: one wire-protocol front door over N shard daemons.

The router speaks the exact :mod:`repro.serve` protocol on its front socket
— ``repro.connect()`` pointed at a router is bit-for-bit a single-daemon
client — and fans out over a small
:class:`~repro.serve.pool.ConnectionPool` of backend connections per shard
(``pool_size=``), so concurrent requests routed to the *same* shard relay in
parallel instead of serializing on one socket:

* ``catalog`` merges every shard's catalog into one entry list (preferring
  the owning shard's row for keys that transiently exist on two shards
  mid-rebalance);
* ``describe``/``read`` forward to the shard the :class:`ShardMap` names
  as the entry's owner.  The relay is zero-copy: the shard's response
  header is rewritten (spans merged), the ndarray payload is passed through
  untouched — the router never decodes, copies or even inspects result
  bytes;
* ``stats`` merges per-shard counters and registry snapshots, each stamped
  with a ``shard`` label (the router's own snapshot under
  ``shard="router"``), so one scrape sees every process;
* ``trace`` serves the router's own ring, which — because shard spans are
  grafted as responses relay through — holds the *complete* tree of every
  traced request: client root, router ``route`` span, shard fetch/decode.

Fault tolerance (with ``replicas > 1`` in the map) is layered on the same
relay: ``describe``/``read`` try the entry's replicas in ring order, failing
over to the next on any *transport*-level failure — connect errors, torn
frames, payload-checksum mismatches caught before relay — while application
errors (a bad index, a missing entry) still relay verbatim on the first
healthy exchange.  Each backend sits behind a
:class:`~repro.shard.breaker.CircuitBreaker`: ``breaker_threshold``
consecutive transport failures open it, after which calls fail over in
microseconds (:class:`~repro.shard.breaker.BreakerOpenError`) instead of
re-paying connect timeouts; a background prober re-dials sick shards every
``probe_interval`` seconds so recovery needs no client traffic.  Breaker
states, trips and failover counts ship as ``repro_router_*`` families and in
``stats``; the ``health`` op answers from breaker state alone (no shard
round trips), which is what the gateway's ``/health`` serves.

Backend failures surface as typed :class:`ShardError` responses naming the
shard and address.  Backend connections dial under one
:class:`~repro.serve.client.ConnectSpec` (jittered exponential backoff on
refusal), so launching a router alongside its shard daemons never races
their binds, and a poisoned pooled connection (shard restarted) is replaced
transparently on the next request that needs it.

The shard map is swappable live (:meth:`RouterDaemon.set_map`): rebalancing
installs the new topology between its copy and prune phases, so routed
reads never observe a missing entry.
"""

from __future__ import annotations

import logging
import threading
from numbers import Number
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import access_extra, label_snapshot, merge_snapshots
from repro.obs import span as obs_span
from repro.obs.tracing import current_trace
from repro.obs.collectors import counter_family, gauge_family
from repro.serve.client import ConnectSpec
from repro.serve.daemon import WireDaemon
from repro.serve.pool import ConnectionPool
from repro.serve.protocol import (
    ProtocolError,
    error_header,
    register_error_type,
)
from repro.shard.breaker import BreakerOpenError, CircuitBreaker
from repro.shard.shardmap import ShardMap, entry_key

__all__ = ["RouterDaemon", "ShardError"]

log = logging.getLogger("repro.shard.router")


@register_error_type
class ShardError(RuntimeError):
    """A shard backend failed at the transport level (named in the message).

    Registered for typed transport: clients that imported :mod:`repro.shard`
    re-raise it exactly; others get the message via ``RemoteError``.
    Application errors from a shard are *not* wrapped — they relay with
    their original type and message.
    """


class RouterDaemon(WireDaemon):
    """Shard-fan-out daemon: one front socket, one connection pool per shard.

    Parameters
    ----------
    shard_map:
        The :class:`ShardMap` naming the shards and placing entries.
    host / port / backlog / tracer / slow_ms:
        See :class:`~repro.serve.daemon.WireDaemon`.
    timeout:
        Socket timeout of each backend connection.
    retries / backoff:
        Backend connect retry policy (one :class:`ConnectSpec` per shard);
        the default rides out a shard daemon that is still binding when the
        router starts.
    pool_size:
        Backend connections per shard.  One connection serializes concurrent
        requests routed to the same shard; a handful lets them relay in
        parallel (``bench_shard.py`` prices this).
    breaker_threshold / breaker_cooldown:
        Per-shard circuit breaker policy: consecutive transport failures
        that trip it open, and seconds before a half-open probe is allowed.
    probe_interval:
        Background health-prober period.  Every tick, shards whose breaker
        is not closed get one probe ``describe`` (through the breaker's
        half-open gate), so a restarted shard re-enters rotation without
        waiting for client traffic.  ``0`` disables the prober.
    """

    _accept_thread_name = "repro-shard-router-accept"

    def __init__(
        self,
        shard_map: ShardMap,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 32,
        tracer=None,
        slow_ms: Optional[float] = None,
        timeout: float = 30.0,
        retries: int = 8,
        backoff: float = 0.05,
        pool_size: int = 4,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        probe_interval: float = 0.25,
    ) -> None:
        super().__init__(
            host=host, port=port, backlog=backlog, tracer=tracer, slow_ms=slow_ms
        )
        self.shard_map = shard_map
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.pool_size = max(1, int(pool_size))
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_cooldown = float(breaker_cooldown)
        self.probe_interval = float(probe_interval)
        self._pools: Dict[str, ConnectionPool] = {}  # repro: guarded-by(_lock)
        self._breakers: Dict[str, CircuitBreaker] = {}  # repro: guarded-by(_lock)
        self._probe_thread: Optional[threading.Thread] = None
        self._counters.update(
            {
                "reads_forwarded": 0,
                "relay_bytes": 0,
                "backend_errors": 0,
                "failovers": 0,
                "breaker_rejections": 0,
            }
        )

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> str:
        if self._listener is not None:
            return self.address
        # Dial one connection per shard before accepting clients.  Without
        # replicas a dead backend fails here, loudly — a misconfigured
        # topology should not serve.  With replicas the router *can* serve
        # around a dead shard, so a warm failure records a breaker strike
        # and startup proceeds; the prober keeps retrying it.
        for spec in self.shard_map.shards:
            # Eager breaker creation: the breaker-state gauge and health()
            # report every shard from the first scrape, not only the ones
            # traffic has reached.
            self._breaker(spec.name)
            try:
                self._pool(spec.name).warm()
            except (OSError, ProtocolError) as exc:
                if self.shard_map.replicas <= 1:
                    raise
                self._breaker(spec.name).record_failure()
                log.warning(
                    "shard unreachable at startup",
                    extra=access_extra(shard=spec.name, error=str(exc)),
                )
        address = super().start()
        if self.probe_interval > 0:
            self._probe_thread = threading.Thread(
                target=self._probe_loop, name="repro-shard-router-prober", daemon=True
            )
            self._probe_thread.start()
        return address

    def stop(self, timeout: float = 5.0) -> None:
        super().stop(timeout)
        if self._probe_thread is not None:
            self._probe_thread.join(timeout)
            self._probe_thread = None
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
            self._breakers.clear()
        for pool in pools:
            pool.close()

    def set_map(self, shard_map: ShardMap) -> None:
        """Install a new topology live; routed requests use it immediately.

        Pools of shards that left the map (or changed address) drain — idle
        connections close now, leased ones as their in-flight relays finish;
        new shards connect lazily on first forward.  Rebalancing calls this
        *between* copying entries to their new owners and pruning the old
        copies, so every entry is readable at its routed location throughout.
        """
        to_close: List[ConnectionPool] = []
        with self._lock:
            self.shard_map = shard_map
            live = {s.name: s for s in shard_map.shards}
            for name, pool in list(self._pools.items()):
                spec = live.get(name)
                if spec is None or pool.address != _normalize(spec.address):
                    to_close.append(self._pools.pop(name))
                    # A departed (or re-addressed) shard's breaker history is
                    # about the old backend; a future same-named shard starts
                    # clean.
                    self._breakers.pop(name, None)
            for name in list(self._breakers):
                if name not in live:
                    del self._breakers[name]
        for pool in to_close:
            pool.close()
        for name in live:
            self._breaker(name)
        log.info(
            "shard map installed",
            extra=access_extra(shards=shard_map.names()),
        )

    def _pool(self, name: str) -> ConnectionPool:
        """The live connection pool for a shard, (re)creating as needed."""
        spec = self.shard_map.spec(name)
        with self._lock:
            pool = self._pools.get(name)
        if pool is not None and not pool.closed:
            return pool
        # Creating a pool opens no sockets, so losing the race below costs
        # nothing — the loser is dropped unused.
        fresh = ConnectionPool(
            ConnectSpec(
                spec.address,
                timeout=self.timeout,
                retries=self.retries,
                backoff=self.backoff,
            ),
            size=self.pool_size,
            tracer=self.tracer,
        )
        with self._lock:
            current = self._pools.get(name)
            if current is not None and not current.closed:
                return current
            self._pools[name] = fresh
        return fresh

    def _breaker(self, name: str) -> CircuitBreaker:
        """The circuit breaker guarding one shard's backend."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    name,
                    threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown,
                )
                self._breakers[name] = breaker
        return breaker

    def _probe_loop(self) -> None:
        """Background recovery: probe every shard whose breaker is not closed.

        The probe is an ordinary ``describe`` relay through :meth:`_forward`,
        so it runs the same breaker gate as client traffic — an open breaker
        inside its cooldown rejects the probe for free, one past it admits
        exactly one half-open attempt whose success closes the breaker.
        """
        while not self._stop.wait(self.probe_interval):
            with self._lock:
                sick = [
                    s.name
                    for s in self.shard_map.shards
                    if s.name in self._breakers
                    and self._breakers[s.name].state != "closed"
                ]
            for name in sick:
                if self._stop.is_set():
                    return
                try:
                    self._forward(name, {"op": "describe"})
                except (ShardError, BreakerOpenError):
                    continue
                log.info("shard recovered", extra=access_extra(shard=name))

    def __repr__(self) -> str:
        bound = f"at {self._host}:{self._port}" if self._listener else "(not started)"
        return f"RouterDaemon({', '.join(self.shard_map.names())} {bound})"

    # -- request handling ------------------------------------------------------
    def _dispatch(self, header: Dict) -> Tuple[Dict, bytes]:
        op = header.get("op")
        with self._lock:
            self._counters["requests"] += 1
        try:
            if op == "catalog":
                return {"status": "ok", "entries": self._merged_catalog()}, b""
            if op == "describe":
                if header.get("field") is None:
                    return self._op_describe_store(), b""
                return self._forward_to_owner(header)
            if op == "read":
                resp, payload = self._forward_to_owner(header)
                with self._lock:
                    self._counters["reads_forwarded"] += 1
                    self._counters["relay_bytes"] += len(payload)
                return resp, payload
            if op == "stats":
                return self._op_stats(), b""
            if op == "health":
                return {"status": "ok", **self.health()}, b""
            if op == "trace":
                return self._op_trace(header), b""
            raise ValueError(
                f"unknown operation {op!r}; the router serves describe, catalog, "
                "read, stats, health and trace"
            )
        except Exception as exc:  # noqa: BLE001 - every failure becomes a response
            with self._lock:
                self._counters["errors"] += 1
            return error_header(exc), b""

    def _forward_to_owner(self, header: Dict) -> Tuple[Dict, bytes]:
        """Relay to the entry's replicas in ring order, failing over on transport.

        Only *transport*-class failures advance to the next replica — a
        connect/exchange failure (:class:`ShardError`) or a breaker
        rejection (:class:`BreakerOpenError`).  An application error from a
        healthy shard (bad bbox, missing entry) is a complete answer every
        replica would repeat, so it relays immediately.  When every replica
        fails, the caller gets the breaker error if all were rejected
        breaker-fast, else a :class:`ShardError` summarizing each attempt.
        """
        field = str(header["field"])
        step = int(header.get("step", 0))
        names = self.shard_map.owner_names(field, step)
        failures: List[Exception] = []
        for attempt, name in enumerate(names):
            try:
                resp, payload = self._forward(name, header)
            except (ShardError, BreakerOpenError) as exc:
                failures.append(exc)
                if attempt + 1 < len(names):
                    with self._lock:
                        self._counters["failovers"] += 1
                    log.warning(
                        "replica failover",
                        extra=access_extra(
                            entry=entry_key(field, step),
                            shard=name,
                            next=names[attempt + 1],
                            error=str(exc),
                        ),
                    )
                continue
            return resp, payload
        if len(failures) == 1:
            raise failures[0]
        detail = "; ".join(str(exc) for exc in failures)
        if all(isinstance(exc, BreakerOpenError) for exc in failures):
            raise BreakerOpenError(
                f"all {len(names)} replicas of {entry_key(field, step)} have "
                f"open circuit breakers: {detail}"
            )
        raise ShardError(
            f"all {len(names)} replicas of {entry_key(field, step)} failed: {detail}"
        )

    def _forward(self, name: str, header: Dict, payload: bytes = b"") -> Tuple[Dict, bytes]:
        """Relay one request to a shard; the response passes through zero-copy.

        The shard's breaker gates the call: an open breaker rejects in
        microseconds (no socket touched) so failover is cheap, and every
        outcome is recorded — transport failures count toward tripping it,
        any completed exchange (application errors included: they arrive on
        a healthy stream) closes it.  The backend client verifies the
        response payload checksum before this returns, so a corrupting
        shard is a transport failure here, never relayed bytes.

        Inside the ``route`` span the ambient trace points at *us*, so the
        forwarded header's ``trace`` is rewritten and the shard's request
        span parents on the route span — one tree across three processes.
        With the router's tracer disabled the client's original trace rides
        through untouched and the shard parents on the client directly.
        """
        op = header.get("op")
        spec = self.shard_map.spec(name)
        breaker = self._breaker(name)
        if not breaker.allow():
            with self._lock:
                self._counters["breaker_rejections"] += 1
            raise BreakerOpenError(
                f"shard {name!r} at {spec.address}: circuit breaker is open"
            )
        with obs_span("route", shard=name, op=op):
            forwarded = header
            wire_trace = current_trace()
            if wire_trace is not None:
                forwarded = {**header, "trace": wire_trace}
            try:
                with self._pool(name).lease() as backend:
                    resp, resp_payload = backend.exchange(forwarded, payload)
            except (OSError, ProtocolError) as exc:
                tripped = breaker.record_failure()
                with self._lock:
                    self._counters["backend_errors"] += 1
                if tripped:
                    log.warning(
                        "circuit breaker opened",
                        extra=access_extra(shard=name, error=str(exc)),
                    )
                raise ShardError(
                    f"shard {name!r} at {spec.address} failed during {op!r}: {exc}"
                ) from exc
        breaker.record_success()
        spans = resp.pop("spans", None)
        if spans:
            if self.tracer.enabled:
                # The shard's half of the trace lands in the router's ring,
                # so the router's "trace" op shows complete trees.
                self.tracer.graft(spans)
            # ...and rides on to the client; the base request handler appends
            # the router's own spans behind these (span ids dedupe).
            resp["spans"] = spans
        return resp, resp_payload

    # -- merged ops ------------------------------------------------------------
    def _shard_request(self, name: str, header: Dict) -> Dict:
        """A routed *internal* request (catalog/stats); typed errors raise."""
        resp, _ = self._forward(name, header)
        if resp.get("status") != "ok":
            from repro.serve.protocol import raise_remote_error

            raise_remote_error(resp)
        return resp

    def _merged_catalog(self) -> List[Dict[str, Any]]:
        """Every shard's entries as one catalog, owner's row winning.

        Mid-rebalance an entry legitimately exists on two shards (copied to
        the destination, not yet pruned from the source); the merge keeps the
        row from the shard the current map routes reads to.

        With replication, up to ``replicas - 1`` unreachable shards are
        tolerated: every entry a dead shard held also lives on its other
        replicas, whose catalogs list it, so the merge stays complete.  One
        more failure than that could silently hide entries, so it raises.
        """
        shard_map = self.shard_map
        merged: Dict[str, Dict[str, Any]] = {}
        failed: List[Exception] = []
        for spec in shard_map.shards:
            try:
                resp = self._shard_request(spec.name, {"op": "catalog"})
            except (ShardError, BreakerOpenError) as exc:
                failed.append(exc)
                if len(failed) >= shard_map.replicas:
                    raise
                continue
            for row in resp.get("entries", ()):
                key = entry_key(str(row["field"]), int(row["step"]))
                owner = shard_map.owner_name(str(row["field"]), int(row["step"]))
                if key not in merged or owner == spec.name:
                    merged[key] = dict(row)
        return [merged[key] for key in sorted(merged)]

    def _op_describe_store(self) -> Dict[str, Any]:
        entries = self._merged_catalog()
        return {
            "status": "ok",
            "kind": "store",
            "root": f"shard-router[{','.join(self.shard_map.names())}]",
            "n_entries": len(entries),
            "fields": sorted({str(e["field"]) for e in entries}),
        }

    def _op_stats(self) -> Dict[str, Any]:
        """Fleet stats: summed counters, per-shard detail, labeled metrics.

        Top-level numeric counters sum across shards (so ``repro stats``
        against a router reads like one big daemon); ``shards`` keeps each
        daemon's full stats; ``router`` is the router's own accounting;
        ``metrics`` merges every process's registry snapshot with a
        ``shard`` label telling their series apart.
        """
        totals: Dict[str, float] = {}
        shards: Dict[str, Any] = {}
        snapshots = [label_snapshot(self._own_snapshot(), {"shard": "router"})]
        for spec in self.shard_map.shards:
            try:
                resp = self._shard_request(spec.name, {"op": "stats"})
            except (ShardError, BreakerOpenError) as exc:
                # Observability must not die with a shard: a fleet scrape
                # with one dead backend reports the death instead of failing.
                shards[spec.name] = {"error": str(exc)}
                continue
            resp.pop("status", None)
            metrics = resp.pop("metrics", None)
            if metrics:
                snapshots.append(label_snapshot(metrics, {"shard": spec.name}))
            shards[spec.name] = resp
            for key, value in resp.items():
                if isinstance(value, Number) and not isinstance(value, bool):
                    totals[key] = totals.get(key, 0) + value
        return {
            "status": "ok",
            **totals,
            "router": self.stats(),
            "shards": shards,
            "metrics": merge_snapshots(*snapshots),
        }

    def health(self) -> Dict[str, Any]:
        """Cluster health from breaker state alone — no shard round trips.

        A shard is *degraded* when its breaker is not closed.  The cluster
        is unhealthy (``ok: False``) when some replica set on the ring is
        entirely degraded — i.e. an entry placed there would be unreachable
        via every replica.  With all breakers closed it is trivially
        healthy; the answer is computed from local state, so health polls
        stay cheap no matter how sick the fleet is.
        """
        with self._lock:
            shard_map = self.shard_map
            states = {
                s.name: (
                    self._breakers[s.name].state
                    if s.name in self._breakers
                    else "closed"
                )
                for s in shard_map.shards
            }
        degraded = sorted(n for n, state in states.items() if state != "closed")
        unreachable: List[List[str]] = []
        if degraded:
            dead = set(degraded)
            unreachable = [
                sorted(group)
                for group in shard_map.replica_sets()
                if group <= dead
            ]
        return {
            "ok": not unreachable,
            "replicas": shard_map.replicas,
            "shards": states,
            "degraded": degraded,
            "unreachable": unreachable,
        }

    def _own_snapshot(self) -> List[Dict[str, Any]]:
        from repro.obs import REGISTRY

        return REGISTRY.snapshot()

    # -- introspection ---------------------------------------------------------
    def _collectors(self) -> List[Callable]:
        return [self._collect_families]

    def _collect_families(self) -> list:
        with self._lock:
            counters = dict(self._counters)
            active = len(self._connections)
            pools = list(self._pools.values())
            breakers = dict(self._breakers)
        backends = sum(p.stats()["open"] for p in pools if not p.closed)
        breaker_states = {name: b.state_code for name, b in breakers.items()}
        breaker_trips = {name: b.stats()["trips"] for name, b in breakers.items()}
        return [
            counter_family("repro_router_requests_total",
                           "Requests dispatched by the shard router.",
                           counters["requests"]),
            counter_family("repro_router_reads_forwarded_total",
                           "Read operations relayed to a shard.",
                           counters["reads_forwarded"]),
            counter_family("repro_router_relay_bytes_total",
                           "Result payload bytes relayed shard-to-client.",
                           counters["relay_bytes"]),
            counter_family("repro_router_errors_total",
                           "Requests answered with a router-level error.",
                           counters["errors"]),
            counter_family("repro_router_backend_errors_total",
                           "Transport failures talking to shard backends.",
                           counters["backend_errors"]),
            counter_family("repro_router_connections_total",
                           "Client connections accepted since start.",
                           counters["connections"]),
            gauge_family("repro_router_active_connections",
                         "Client connections currently open.",
                         active),
            gauge_family("repro_router_backends_connected",
                         "Shard backend connections currently live.",
                         backends),
            counter_family("repro_router_failovers_total",
                           "Requests retried on another replica after a "
                           "transport failure.",
                           counters["failovers"]),
            counter_family("repro_router_breaker_rejections_total",
                           "Backend calls rejected by an open circuit breaker.",
                           counters["breaker_rejections"]),
            {
                "name": "repro_router_breaker_state",
                "type": "gauge",
                "help": "Circuit breaker state per shard "
                        "(0=closed, 1=half_open, 2=open).",
                "samples": [
                    {"labels": {"shard": name}, "value": float(code)}
                    for name, code in sorted(breaker_states.items())
                ],
            },
            {
                "name": "repro_router_breaker_trips_total",
                "type": "counter",
                "help": "Circuit breaker closed/half-open -> open transitions "
                        "per shard.",
                "samples": [
                    {"labels": {"shard": name}, "value": float(trips)}
                    for name, trips in sorted(breaker_trips.items())
                ],
            },
        ]

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["shards"] = self.shard_map.names()
        with self._lock:
            pools = dict(self._pools)
            breakers = dict(self._breakers)
        out["pools"] = {name: pool.stats() for name, pool in pools.items()}
        out["breakers"] = {name: b.stats() for name, b in breakers.items()}
        out["health"] = self.health()
        return out


def _normalize(address: str) -> str:
    from repro.serve.daemon import parse_address

    host, port = parse_address(address)
    return f"{host}:{port}"
