"""``repro.shard`` — consistent-hash placement, routing and rebalancing.

The scale-out layer over :mod:`repro.serve`: a :class:`ShardMap` places
every ``(field, step)`` on one of N named shards with consistent hashing (no
central metadata — every process computes the same owner), a
:class:`RouterDaemon` speaks the single-daemon wire protocol in front of N
shard daemons (``repro.connect()`` cannot tell the difference), and
:mod:`repro.shard.rebalance` moves entries between shards live — copy,
switch the map, prune — without a read ever missing.

Topology is one JSON document::

    {"type": "shardmap", "virtual_nodes": 64,
     "shards": [{"name": "s0", "address": "127.0.0.1:4815", "store": "shards/s0"},
                {"name": "s1", "address": "127.0.0.1:4816", "store": "shards/s1"}]}

``replicas: R`` in the topology places every entry on R distinct shards;
the router fails reads over between them behind per-shard
:class:`CircuitBreaker`\\ s, so one dead shard degrades throughput instead
of availability.

``repro shard split/plan/rebalance/serve`` are the operator verbs.
"""

from repro.shard.breaker import BreakerOpenError, CircuitBreaker
from repro.shard.rebalance import (
    execute_plan,
    plan_for_stores,
    shard_stores,
    split_store,
)
from repro.shard.router import RouterDaemon, ShardError
from repro.shard.shardmap import (
    RebalanceMove,
    ShardMap,
    ShardSpec,
    entry_key,
    plan_rebalance,
)

__all__ = [
    "ShardMap",
    "ShardSpec",
    "RebalanceMove",
    "plan_rebalance",
    "entry_key",
    "RouterDaemon",
    "ShardError",
    "BreakerOpenError",
    "CircuitBreaker",
    "split_store",
    "plan_for_stores",
    "execute_plan",
    "shard_stores",
]
