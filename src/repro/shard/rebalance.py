"""Rebalancing: execute a :func:`plan_rebalance` move list against live data.

The move primitive is :meth:`Store.adopt` + :meth:`Store.drop`, both built
on tmp + ``os.replace``, so concurrent readers (including shard daemons
serving the stores being rebalanced) never see torn state.  A live
rebalance is three strictly ordered phases::

    copy   — adopt every moving entry into its destination store; the
             source copy stays, so a router on the OLD map still serves
             every read correctly.
    switch — install the new map on the router (``RouterDaemon.set_map``,
             or restart routers on the new topology file); from here reads
             route to the destinations, which all hold their entries.
    prune  — drop the moved entries from their sources; by now nothing
             routes to them.

At no instant does any map — old or new — route a read at a shard missing
the entry, which is the whole trick: availability through a topology change
without a stop-the-world barrier.  ``execute_plan`` runs the phases in
order (phases are individually skippable for operators driving the switch
out-of-band across many routers), and the shard fuzz harness replays the
index-expression matrix straight through a mid-run rebalance to prove reads
stay bit-for-bit.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs import access_extra
from repro.shard.shardmap import RebalanceMove, ShardMap, plan_rebalance

__all__ = ["shard_stores", "split_store", "execute_plan", "plan_for_stores"]

log = logging.getLogger("repro.shard.rebalance")


def shard_stores(shard_map: ShardMap, stores: Optional[Mapping[str, Any]] = None):
    """Resolve each shard's :class:`~repro.store.Store`, by name.

    ``stores`` may pre-supply open Store objects (in-process tests, daemons
    sharing the instance); anything missing is opened from the shard spec's
    ``store`` path — the field the topology JSON carries exactly so CLI
    rebalances know where each shard's directory lives.
    """
    from repro.store import Store

    out: Dict[str, Any] = {}
    for spec in shard_map.shards:
        supplied = None if stores is None else stores.get(spec.name)
        if supplied is not None:
            out[spec.name] = supplied
            continue
        if spec.store is None:
            raise ValueError(
                f"shard {spec.name!r} has no 'store' path in the topology and "
                "no open store was supplied"
            )
        out[spec.name] = Store(spec.store)
    return out


def split_store(
    source,
    shard_map: ShardMap,
    stores: Optional[Mapping[str, Any]] = None,
) -> Dict[str, List[str]]:
    """Distribute one store's entries across a shard map's stores.

    The bootstrap verb: every entry of ``source`` is adopted (copied, never
    re-encoded) into the store of the shard the map places it on.  The
    source store is left untouched — it remains a valid fallback until the
    operator deletes it.  Returns ``{shard name: [entry keys]}``.
    """
    targets = shard_stores(shard_map, stores)
    placed: Dict[str, List[str]] = {name: [] for name in shard_map.names()}
    for entry in source.entries():
        container = source.root / entry.path
        for name in shard_map.owner_names(entry.field, entry.step):
            targets[name].adopt(entry.field, entry.step, container, overwrite=True)
            placed[name].append(entry.key)
            log.info(
                "entry placed",
                extra=access_extra(entry=entry.key, shard=name),
            )
    return placed


def plan_for_stores(
    old: ShardMap,
    new: ShardMap,
    stores: Optional[Mapping[str, Any]] = None,
) -> List[RebalanceMove]:
    """Plan a rebalance from the entries actually present in the old stores.

    The union of the old shards' catalogs is the corpus; the plan is the
    minimal move list :func:`plan_rebalance` derives from the two maps.
    """
    sources = shard_stores(old, stores)
    entries = sorted(
        {(e.field, e.step) for store in sources.values() for e in store.entries()}
    )
    return plan_rebalance(old, new, entries)


def execute_plan(
    plan: Sequence[RebalanceMove],
    old: ShardMap,
    new: ShardMap,
    stores: Optional[Mapping[str, Any]] = None,
    router=None,
    copy: bool = True,
    prune: bool = True,
) -> Dict[str, int]:
    """Run the copy → switch → prune sequence for a move list.

    ``stores`` resolves shard names to Stores for *both* maps (union of the
    two topologies' specs).  ``router``, when given, gets ``set_map(new)``
    between the phases; operators switching many routers out-of-band run
    ``copy=True, prune=False`` first, flip their routers, then
    ``copy=False, prune=True``.  Returns phase counts.
    """
    union_stores: Dict[str, Any] = {}
    union_stores.update(shard_stores(old, stores))
    for spec in new.shards:
        if spec.name not in union_stores:
            union_stores.update(shard_stores(ShardMap([spec]), stores))
    copied = pruned = 0
    if copy:
        done = set()
        for move in plan:
            # A dest already holding the entry under the old map (replica
            # bookkeeping move, e.g. a pure prune) needs no copy.
            if move.dest in old.owner_names(move.field, move.step):
                continue
            if (move.key, move.dest) in done:
                continue
            done.add((move.key, move.dest))
            source = union_stores[move.source]
            entry = source.entry(move.field, move.step)
            union_stores[move.dest].adopt(
                move.field, move.step, source.root / entry.path, overwrite=True
            )
            copied += 1
            log.info(
                "entry copied",
                extra=access_extra(
                    entry=move.key, source=move.source, dest=move.dest
                ),
            )
    if router is not None:
        router.set_map(new)
    if prune:
        dropped = set()
        for move in plan:
            # Only shards leaving the entry's replica set are pruned; a
            # source still in the new set keeps serving its copy.
            if move.source in new.owner_names(move.field, move.step):
                continue
            if (move.key, move.source) in dropped:
                continue
            dropped.add((move.key, move.source))
            union_stores[move.source].drop(move.field, move.step)
            pruned += 1
            log.info(
                "entry pruned",
                extra=access_extra(entry=move.key, source=move.source),
            )
    return {"moves": len(plan), "copied": copied, "pruned": pruned}
