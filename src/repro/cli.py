"""Command-line interface.

A small tool for working with single fields stored as ``.npy`` files, the
way a downstream user would exercise the compressors without writing Python:

* ``repro compress input.npy output.rpca --codec sz3 --error-bound 1e-3``
* ``repro decompress output.rpca reconstruction.npy``
* ``repro info output.rpca``
* ``repro evaluate original.npy reconstruction.npy``

``--postprocess`` stores the sampled Bezier post-processing plan inside the
compressed container so ``decompress`` can apply it without access to the
original data.  The multi-resolution workflow (ROI extraction, SZ3MR over AMR
hierarchies) is exposed through the Python API; the CLI intentionally covers
the single-array path only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.analysis import max_abs_error, psnr, ssim
from repro.compressors import get_compressor
from repro.compressors.base import CompressedArray
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth
from repro.insitu.io import read_compressed_array, write_compressed_array

__all__ = ["main", "build_parser"]

_CODECS = ("sz3", "sz2", "zfp")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for documentation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error-bounded lossy compression for scientific fields (.npy in, .rpca out).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compress", help="compress a .npy field into a .rpca container")
    comp.add_argument("input", type=Path, help="input .npy file (1-3D float array)")
    comp.add_argument("output", type=Path, help="output .rpca container")
    comp.add_argument("--codec", choices=_CODECS, default="sz3", help="compressor to use")
    comp.add_argument("--error-bound", type=float, required=True, help="point-wise error bound")
    comp.add_argument(
        "--relative",
        action="store_true",
        help="interpret the error bound as a fraction of the value range",
    )
    comp.add_argument(
        "--block-size", type=int, default=None, help="SZ2 block size (ignored by other codecs)"
    )
    comp.add_argument(
        "--postprocess",
        action="store_true",
        help="plan error-bounded Bezier post-processing and store it in the container",
    )

    deco = sub.add_parser("decompress", help="reconstruct a .npy field from a .rpca container")
    deco.add_argument("input", type=Path, help="input .rpca container")
    deco.add_argument("output", type=Path, help="output .npy file")
    deco.add_argument(
        "--no-postprocess",
        action="store_true",
        help="skip the stored post-processing plan even if present",
    )

    info = sub.add_parser("info", help="print metadata of a .rpca container")
    info.add_argument("input", type=Path, help=".rpca container")

    ev = sub.add_parser("evaluate", help="compare two .npy fields (PSNR, SSIM, max error)")
    ev.add_argument("original", type=Path)
    ev.add_argument("reconstruction", type=Path)
    return parser


def _load_field(path: Path) -> np.ndarray:
    data = np.load(path)
    if data.ndim not in (1, 2, 3):
        raise SystemExit(f"error: {path} must hold a 1-3 dimensional array, got {data.ndim}D")
    return np.asarray(data, dtype=np.float64)


def _cmd_compress(args: argparse.Namespace) -> int:
    field = _load_field(args.input)
    options = {}
    if args.codec == "sz2" and args.block_size:
        options["block_size"] = int(args.block_size)
    compressor = get_compressor(args.codec, **options)
    compressed = compressor.compress(field, args.error_bound, relative=args.relative)

    if args.postprocess:
        if args.codec not in ("sz2", "zfp"):
            print("note: --postprocess is designed for block-wise codecs (sz2/zfp)", file=sys.stderr)
        plan = PostProcessor(args.codec if args.codec in ("sz2", "zfp", "sz3") else "sz2").plan(
            field, compressor, compressed.error_bound
        )
        compressed.metadata["postprocess"] = {
            "intensities": list(plan.intensities),
            "block_size": plan.block_size,
            "error_bound": plan.error_bound,
        }

    nbytes = write_compressed_array(args.output, compressed)
    print(
        f"compressed {args.input} ({compressed.nbytes_original} B) -> {args.output} ({nbytes} B), "
        f"ratio {compressed.compression_ratio:.2f}x, codec {compressed.codec}, "
        f"error bound {compressed.error_bound:.6g}"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    compressed = read_compressed_array(args.input)
    compressor = get_compressor(compressed.codec)
    field = compressor.decompress(compressed)

    plan = compressed.metadata.get("postprocess")
    if plan and not args.no_postprocess:
        field = bezier_boundary_smooth(
            field,
            block_size=int(plan["block_size"]),
            error_bound=float(plan["error_bound"]),
            intensity=[float(a) for a in plan["intensities"]][: field.ndim],
        )
        applied = " (post-processed)"
    else:
        applied = ""
    np.save(args.output, field)
    print(f"decompressed {args.input} -> {args.output}, shape {field.shape}{applied}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    compressed = read_compressed_array(args.input)
    summary = {
        "codec": compressed.codec,
        "shape": list(compressed.shape),
        "dtype": compressed.dtype,
        "error_bound": compressed.error_bound,
        "nbytes_original": compressed.nbytes_original,
        "nbytes_compressed": compressed.nbytes_compressed,
        "compression_ratio": round(compressed.compression_ratio, 3),
        "metadata": compressed.metadata,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    original = _load_field(args.original)
    reconstruction = _load_field(args.reconstruction)
    if original.shape != reconstruction.shape:
        raise SystemExit(
            f"error: shape mismatch {original.shape} vs {reconstruction.shape}"
        )
    print(f"PSNR      : {psnr(original, reconstruction):.3f} dB")
    if original.ndim in (2, 3):
        print(f"SSIM      : {ssim(original, reconstruction):.5f}")
    print(f"max error : {max_abs_error(original, reconstruction):.6g}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "info": _cmd_info,
        "evaluate": _cmd_evaluate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
