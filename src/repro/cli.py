"""Command-line interface.

A small tool for working with single fields stored as ``.npy`` files, the
way a downstream user would exercise the compressors without writing Python:

* ``repro compress input.npy output.rpca --codec sz3 --error-bound 1e-3``
* ``repro decompress output.rpca reconstruction.npy``
* ``repro info output.rpca``
* ``repro evaluate original.npy reconstruction.npy``

``--postprocess`` stores the sampled Bezier post-processing plan inside the
compressed container so ``decompress`` can apply it without access to the
original data.

The block-indexed store (:mod:`repro.store`) is exposed through a ``store``
command group:

* ``repro store ls ROOT`` — list the catalog;
* ``repro store get ROOT FIELD STEP out.npy [--level L]`` — decode one level;
* ``repro store roi ROOT FIELD STEP out.npy --bbox 0:16,8:24,0:32`` —
  decode a sub-region, touching only the intersecting blocks;
* ``repro store read ROOT FIELD STEP out.npy --index "10:20,:,::2"`` —
  NumPy-style lazy indexing (ints, steps, ``...``) through
  :mod:`repro.array`, with per-query decode accounting.

The read daemon (:mod:`repro.serve`) shares one decode pool between clients:

* ``repro serve ROOT --addr 127.0.0.1:4815`` — serve the store's queries
  over a local socket from one shared block cache;
* ``repro store read ... --remote 127.0.0.1:4815`` — the same ``read``
  query through the daemon, reporting what it cost server-side.

The multi-resolution workflow and in-situ pipeline are driven through
serialized :mod:`repro.api` configs:

* ``repro run config.json [--input field.npy]`` — execute a
  ``WorkflowConfig`` or ``PipelineConfig`` and print a JSON summary, so a
  run recorded with ``WorkflowConfig.to_dict()`` replays bit-for-bit.

Every failure mode (bad inputs, malformed specs, missing stores) exits
non-zero with a one-line ``error:`` message rather than a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.analysis import max_abs_error, psnr, ssim
from repro.api.error_bound import ERROR_BOUND_MODES, ErrorBound
from repro.compressors import get_compressor
from repro.compressors.base import CompressedArray
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth
from repro.insitu.io import read_compressed_array, write_compressed_array

__all__ = ["main", "build_parser"]

_CODECS = ("sz3", "sz2", "zfp")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for documentation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Error-bounded lossy compression for scientific fields (.npy in, .rpca out).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compress", help="compress a .npy field into a .rpca container")
    comp.add_argument("input", type=Path, help="input .npy file (1-3D float array)")
    comp.add_argument("output", type=Path, help="output .rpca container")
    comp.add_argument("--codec", choices=_CODECS, default="sz3", help="compressor to use")
    comp.add_argument("--error-bound", type=float, required=True, help="point-wise error bound")
    comp.add_argument(
        "--mode",
        choices=ERROR_BOUND_MODES,
        default=None,
        help="error-bound convention: abs (default), rel (of the value range), "
        "ptw_rel (of the peak magnitude) or psnr (dB target)",
    )
    comp.add_argument(
        "--relative",
        action="store_true",
        help="deprecated alias for --mode rel",
    )
    comp.add_argument(
        "--block-size", type=int, default=None, help="SZ2 block size (ignored by other codecs)"
    )
    comp.add_argument(
        "--postprocess",
        action="store_true",
        help="plan error-bounded Bezier post-processing and store it in the container",
    )

    deco = sub.add_parser("decompress", help="reconstruct a .npy field from a .rpca container")
    deco.add_argument("input", type=Path, help="input .rpca container")
    deco.add_argument("output", type=Path, help="output .npy file")
    deco.add_argument(
        "--no-postprocess",
        action="store_true",
        help="skip the stored post-processing plan even if present",
    )

    info = sub.add_parser("info", help="print metadata of a .rpca container")
    info.add_argument("input", type=Path, help=".rpca container")

    ev = sub.add_parser("evaluate", help="compare two .npy fields (PSNR, SSIM, max error)")
    ev.add_argument("original", type=Path)
    ev.add_argument("reconstruction", type=Path)

    store = sub.add_parser("store", help="query a block-indexed compressed store (repro.store)")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    ls = store_sub.add_parser("ls", help="list the catalog of a store directory")
    ls.add_argument("root", type=Path, help="store directory (holds manifest.json)")

    get = store_sub.add_parser("get", help="decode one level of a stored snapshot to .npy")
    get.add_argument("root", type=Path, help="store directory")
    get.add_argument("field", help="field name")
    get.add_argument("step", type=int, help="timestep")
    get.add_argument("output", type=Path, help="output .npy file")
    get.add_argument("--level", type=int, default=0, help="resolution level (default 0, finest)")

    roi = store_sub.add_parser(
        "roi", help="decode a sub-region, touching only the intersecting blocks"
    )
    roi.add_argument("root", type=Path, help="store directory")
    roi.add_argument("field", help="field name")
    roi.add_argument("step", type=int, help="timestep")
    roi.add_argument("output", type=Path, help="output .npy file")
    roi.add_argument(
        "--bbox",
        required=True,
        help="per-axis lo:hi cell ranges, comma-separated (e.g. 0:16,8:24,0:32)",
    )
    roi.add_argument("--level", type=int, default=0, help="resolution level (default 0, finest)")

    read = store_sub.add_parser(
        "read", help="decode a NumPy-style selection through the lazy view API"
    )
    read.add_argument("root", type=Path, help="store directory")
    read.add_argument("field", help="field name")
    read.add_argument("step", type=int, help="timestep")
    read.add_argument("output", type=Path, help="output .npy file")
    read.add_argument(
        "--index",
        required=True,
        help="comma-separated per-axis selection, NumPy slice syntax "
        "(e.g. \"10:20,:,::2\", \"5,3:9,0\"; spell leading negatives as "
        "--index=-1,...)",
    )
    read.add_argument("--level", type=int, default=0, help="resolution level (default 0, finest)")
    read.add_argument(
        "--remote",
        metavar="ADDR",
        default=None,
        help="read through a running daemon (host:port from `repro serve`) "
        "instead of opening ROOT locally; ROOT is then ignored",
    )

    serve = sub.add_parser(
        "serve", help="serve a store's read queries over a local socket (repro.serve)"
    )
    serve.add_argument("root", type=Path, help="store directory (holds manifest.json)")
    serve.add_argument(
        "--addr",
        default="127.0.0.1:0",
        help="host:port to bind (default 127.0.0.1:0; port 0 picks a free port, "
        "printed on startup)",
    )
    serve.add_argument(
        "--cache-blocks", type=int, default=512, help="shared block-cache capacity in blocks"
    )
    serve.add_argument(
        "--cache-mb", type=float, default=64.0, help="shared block-cache capacity in MiB"
    )
    serve.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="serve for this many seconds then exit cleanly (default: until ctrl-c)",
    )
    serve.add_argument(
        "--refresh-ttl",
        type=float,
        default=0.05,
        help="debounce the per-request store-manifest stat to at most once per "
        "TTL seconds (default 0.05; 0 stats on every request, always fresh)",
    )
    serve.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v logs one access line per request, -vv adds connection/reader "
        "lifecycle chatter (default: warnings only)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of key=value text",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="log a WARNING (with accounting) for requests slower than this "
        "many milliseconds",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="record request traces into the daemon's in-memory ring "
        "(inspect via `repro stats` clients or the trace wire op)",
    )
    serve.add_argument(
        "--max-readers",
        type=int,
        default=None,
        help="bound on the daemon's per-entry container reader LRU "
        "(default 64); evicted readers close once their reads drain",
    )

    stats = sub.add_parser(
        "stats", help="scrape a running daemon's telemetry (repro.obs)"
    )
    stats.add_argument("addr", help="daemon address (host:port from `repro serve`)")
    stats.add_argument(
        "--prom",
        action="store_true",
        help="render the metrics registry snapshot as Prometheus text "
        "(default: JSON)",
    )
    stats.add_argument(
        "--watch",
        action="store_true",
        help="re-scrape every --interval seconds until interrupted",
    )
    stats.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between scrapes with --watch (default 2)",
    )

    shard = sub.add_parser(
        "shard", help="shard a store across N daemons behind a router (repro.shard)"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    split = shard_sub.add_parser(
        "split", help="distribute one store's entries into a topology's shard stores"
    )
    split.add_argument("topology", type=Path, help="shard map JSON (shards need 'store' paths)")
    split.add_argument("source", type=Path, help="source store directory to split")

    plan = shard_sub.add_parser(
        "plan", help="print the minimal move list between two topologies (JSON)"
    )
    plan.add_argument("old", type=Path, help="current shard map JSON")
    plan.add_argument("new", type=Path, help="target shard map JSON")

    rebalance = shard_sub.add_parser(
        "rebalance", help="execute the move list between two topologies via adopt+drop"
    )
    rebalance.add_argument("old", type=Path, help="current shard map JSON")
    rebalance.add_argument("new", type=Path, help="target shard map JSON")
    rebalance.add_argument(
        "--copy-only",
        action="store_true",
        help="phase 1 only: copy entries to their new shards, leave sources "
        "intact (switch routers to the new topology, then run --prune-only)",
    )
    rebalance.add_argument(
        "--prune-only",
        action="store_true",
        help="phase 3 only: drop moved entries from their old shards "
        "(run after every router serves the new topology)",
    )

    shard_serve = shard_sub.add_parser(
        "serve", help="route the wire protocol across a topology's shard daemons"
    )
    shard_serve.add_argument("topology", type=Path, help="shard map JSON with daemon addresses")
    shard_serve.add_argument(
        "--addr",
        default="127.0.0.1:0",
        help="host:port to bind (default 127.0.0.1:0; port 0 picks a free port, "
        "printed on startup)",
    )
    shard_serve.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="serve for this many seconds then exit cleanly (default: until ctrl-c)",
    )
    shard_serve.add_argument(
        "--connect-retries",
        type=int,
        default=8,
        help="backend connect retries (exponential backoff) while shard "
        "daemons are still binding (default 8)",
    )
    shard_serve.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v logs one access line per routed request, -vv adds "
        "connection/backend lifecycle chatter (default: warnings only)",
    )
    shard_serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of key=value text",
    )
    shard_serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="log a WARNING for routed requests slower than this many milliseconds",
    )
    shard_serve.add_argument(
        "--trace",
        action="store_true",
        help="record routed request traces (shard spans grafted in) into the "
        "router's in-memory ring",
    )
    shard_serve.add_argument(
        "--pool-size",
        type=int,
        default=4,
        help="pooled connections per shard backend; bounds how many routed "
        "requests one shard serves concurrently (default 4)",
    )
    shard_serve.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="override the topology's replication factor: each entry is "
        "owned by this many distinct shards, and reads fail over between "
        "them (default: what the topology JSON says, usually 1)",
    )
    shard_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive transport failures before a shard's circuit "
        "breaker opens (default 3)",
    )
    shard_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        help="seconds an open breaker waits before admitting a half-open "
        "probe (default 1.0)",
    )
    shard_serve.add_argument(
        "--probe-interval",
        type=float,
        default=0.25,
        help="seconds between background health probes of tripped shards; "
        "0 disables the prober (default 0.25)",
    )

    gateway = sub.add_parser(
        "gateway",
        help="HTTP/1.1 front end over a read daemon or shard router (repro.gateway)",
    )
    gateway.add_argument(
        "root",
        type=Path,
        nargs="?",
        default=None,
        help="store directory to serve via an in-process read daemon "
        "(alternative to --router)",
    )
    gateway.add_argument(
        "--router",
        default=None,
        metavar="ADDR",
        help="front an already-running wire backend (read daemon or shard "
        "router) at host:port instead of opening a store",
    )
    gateway.add_argument(
        "--http",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="HTTP bind address (default 127.0.0.1:0; port 0 picks a free "
        "port, printed on startup)",
    )
    gateway.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="serve for this many seconds then exit cleanly (default: until ctrl-c)",
    )
    gateway.add_argument(
        "--pool-size",
        type=int,
        default=4,
        help="pooled backend connections; bounds the gateway's backend "
        "fan-out (default 4)",
    )
    gateway.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="open HTTP connections above which new ones are answered 503 "
        "(default 64)",
    )
    gateway.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="seconds one HTTP request may take end to end before a 504 "
        "(default 30)",
    )
    gateway.add_argument(
        "--connect-retries",
        type=int,
        default=8,
        help="backend connect retries (exponential backoff) while the "
        "backend is still binding (default 8)",
    )
    gateway.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v logs one access line per HTTP request, -vv adds connection "
        "lifecycle chatter (default: warnings only)",
    )
    gateway.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of key=value text",
    )
    gateway.add_argument(
        "--trace",
        action="store_true",
        help="record gateway exchange traces (backend spans grafted in) into "
        "the in-memory trace ring",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injecting TCP proxy in front of one daemon (repro.chaos)",
    )
    chaos.add_argument(
        "listen",
        help="host:port to listen on (port 0 picks a free port, printed on startup)",
    )
    chaos.add_argument("upstream", help="host:port of the daemon to front")
    chaos.add_argument(
        "--seed",
        default="chaos-0",
        help="schedule seed; the fault a connection suffers is a pure "
        "function of (seed, connection index), so a run replays exactly "
        "(default chaos-0)",
    )
    chaos.add_argument(
        "--script",
        default=None,
        metavar="FAULTS",
        help="comma-separated fault cycle applied per connection, e.g. "
        "pass,pass,disconnect (faults: pass, refuse, hang, disconnect, "
        "corrupt, delay)",
    )
    chaos.add_argument(
        "--weights",
        default=None,
        metavar="F=W,...",
        help="seeded weighted draw per connection instead of a cycle, e.g. "
        "pass=6,corrupt=1,disconnect=1 (default when no --script: "
        "pass=4,corrupt=1,disconnect=1)",
    )
    chaos.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="run for this many seconds then exit cleanly (default: until ctrl-c)",
    )
    chaos.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        help="seconds a hung connection is held before the proxy drops it "
        "(default 30)",
    )

    lint = sub.add_parser(
        "lint", help="run the project-aware AST lint rules (repro.devtools)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src/)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON array instead of file:line text",
    )
    lint.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="grandfather findings recorded in this baseline file "
        "(default: lint-baseline.json next to the first path, when present)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into the baseline file and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the available rule ids and exit",
    )

    run = sub.add_parser(
        "run", help="execute a serialized repro.api workflow/pipeline config (JSON)"
    )
    run.add_argument("config", type=Path, help="WorkflowConfig / PipelineConfig JSON file")
    run.add_argument(
        "--input",
        type=Path,
        default=None,
        help="input .npy field (overrides the config's own 'input' section)",
    )
    run.add_argument(
        "--save-reconstruction",
        type=Path,
        default=None,
        help="write the (post-processed) reconstruction to this .npy file",
    )
    run.add_argument(
        "--output-json",
        type=Path,
        default=None,
        help="also write the JSON summary to this file",
    )
    return parser


def _load_field(path: Path) -> np.ndarray:
    from repro.api.facade import load_npy_field

    try:
        return load_npy_field(path)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_compress(args: argparse.Namespace) -> int:
    field = _load_field(args.input)
    options = {}
    if args.codec == "sz2" and args.block_size:
        options["block_size"] = int(args.block_size)
    compressor = get_compressor(args.codec, **options)
    if args.mode is not None and args.relative:
        raise SystemExit("error: --relative cannot be combined with --mode")
    mode = args.mode or ("rel" if args.relative else "abs")
    compressed = compressor.compress(field, ErrorBound(mode, args.error_bound))

    if args.postprocess:
        if args.codec not in ("sz2", "zfp"):
            print("note: --postprocess is designed for block-wise codecs (sz2/zfp)", file=sys.stderr)
        plan = PostProcessor(args.codec if args.codec in ("sz2", "zfp", "sz3") else "sz2").plan(
            field, compressor, compressed.error_bound
        )
        compressed.metadata["postprocess"] = {
            "intensities": list(plan.intensities),
            "block_size": plan.block_size,
            "error_bound": plan.error_bound,
        }

    nbytes = write_compressed_array(args.output, compressed)
    print(
        f"compressed {args.input} ({compressed.nbytes_original} B) -> {args.output} ({nbytes} B), "
        f"ratio {compressed.compression_ratio:.2f}x, codec {compressed.codec}, "
        f"error bound {compressed.error_bound:.6g}"
    )
    return 0


def _read_container_or_exit(path: Path):
    from repro.compressors.errors import DecompressionError

    try:
        return read_compressed_array(path)
    except DecompressionError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_decompress(args: argparse.Namespace) -> int:
    compressed = _read_container_or_exit(args.input)
    compressor = get_compressor(compressed.codec)
    field = compressor.decompress(compressed)

    plan = compressed.metadata.get("postprocess")
    if plan and not args.no_postprocess:
        field = bezier_boundary_smooth(
            field,
            block_size=int(plan["block_size"]),
            error_bound=float(plan["error_bound"]),
            intensity=[float(a) for a in plan["intensities"]][: field.ndim],
        )
        applied = " (post-processed)"
    else:
        applied = ""
    np.save(args.output, field)
    print(f"decompressed {args.input} -> {args.output}, shape {field.shape}{applied}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    compressed = _read_container_or_exit(args.input)
    summary = {
        "codec": compressed.codec,
        "shape": list(compressed.shape),
        "dtype": compressed.dtype,
        "error_bound": compressed.error_bound,
        "nbytes_original": compressed.nbytes_original,
        "nbytes_compressed": compressed.nbytes_compressed,
        "compression_ratio": round(compressed.compression_ratio, 3),
        "metadata": compressed.metadata,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    original = _load_field(args.original)
    reconstruction = _load_field(args.reconstruction)
    if original.shape != reconstruction.shape:
        raise SystemExit(
            f"error: shape mismatch {original.shape} vs {reconstruction.shape}"
        )
    print(f"PSNR      : {psnr(original, reconstruction):.3f} dB")
    if original.ndim in (2, 3):
        print(f"SSIM      : {ssim(original, reconstruction):.5f}")
    print(f"max error : {max_abs_error(original, reconstruction):.6g}")
    return 0


def _parse_bbox(spec: str) -> tuple:
    """Parse ``"0:16,8:24,0:32"`` into ``((0, 16), (8, 24), (0, 32))``."""
    pairs = []
    for part in spec.split(","):
        lo, sep, hi = part.partition(":")
        if not sep:
            raise SystemExit(f"error: bad bbox axis {part!r}; expected lo:hi")
        try:
            pairs.append((int(lo), int(hi)))
        except ValueError:
            raise SystemExit(f"error: bad bbox axis {part!r}; expected integer lo:hi")
    return tuple(pairs)


def _parse_index(spec: str) -> tuple:
    """Parse ``"10:20,:,::2"`` into ``(slice(10, 20), slice(None), slice(None, None, 2))``.

    Each comma-separated part is an integer, ``...``, or a ``start:stop:step``
    slice with any piece omitted — the NumPy syntax, minus spaces.
    """
    items = []
    for part in spec.split(","):
        part = part.strip()
        if part == "...":
            items.append(Ellipsis)
            continue
        if ":" in part:
            pieces = part.split(":")
            if len(pieces) > 3:
                raise SystemExit(f"error: bad index axis {part!r}; at most two ':' allowed")
            try:
                items.append(slice(*(int(p) if p.strip() else None for p in pieces)))
            except ValueError:
                raise SystemExit(f"error: bad index axis {part!r}; expected integer slice parts")
            continue
        try:
            items.append(int(part))
        except ValueError:
            raise SystemExit(f"error: bad index axis {part!r}; expected int, slice or '...'")
    return tuple(items)


def _open_store(root: Path):
    from repro.store import MANIFEST_NAME, Store

    if not root.is_dir():
        raise SystemExit(f"error: {root} is not a store directory")
    if not (root / MANIFEST_NAME).exists():
        raise SystemExit(f"error: {root} is not a store (no {MANIFEST_NAME})")
    try:
        return Store(root)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_store_read_remote(args: argparse.Namespace) -> int:
    """``repro store read --remote``: the same query through a read daemon."""
    from repro.serve import ProtocolError, RemoteStore

    index = _parse_index(args.index)
    try:
        with RemoteStore(args.remote) as client:
            view = client.array(args.field, args.step, level=args.level)
            field = np.asarray(view[index])
            stats = view.stats
    except OSError as exc:
        raise SystemExit(f"error: cannot connect to daemon at {args.remote}: {exc}")
    except ProtocolError as exc:
        raise SystemExit(f"error: {exc}")
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0] if exc.args else exc}")
    except (ValueError, IndexError, TypeError) as exc:
        raise SystemExit(f"error: {exc}")
    np.save(args.output, field)
    print(
        f"read [{args.index}] of {args.field} step {args.step} level "
        f"{args.level} via {args.remote} -> {args.output}, shape {field.shape} "
        f"(daemon decoded {stats['blocks_decoded']}/{stats['blocks_touched']} touched "
        f"blocks, cache hits {stats['cache_hits']})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.array import BlockCache
    from repro.obs import TRACER, configure_logging
    from repro.serve import ReadDaemon, parse_address

    try:
        host, port = parse_address(args.addr)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    store = _open_store(args.root)
    cache = BlockCache(
        max_blocks=args.cache_blocks, max_bytes=int(args.cache_mb * 2 ** 20)
    )
    if args.refresh_ttl < 0:
        raise SystemExit("error: --refresh-ttl must be >= 0")
    configure_logging(verbosity=args.verbose, json_lines=args.log_json)
    if args.trace:
        TRACER.enable()
    daemon_kwargs = {}
    if args.max_readers is not None:
        if args.max_readers < 1:
            raise SystemExit("error: --max-readers must be >= 1")
        daemon_kwargs["max_readers"] = args.max_readers
    daemon = ReadDaemon(
        store,
        host=host,
        port=port,
        cache=cache,
        refresh_ttl=args.refresh_ttl,
        slow_ms=args.slow_ms,
        **daemon_kwargs,
    )
    # SIGTERM (systemd, CI, `kill`) shuts down as cleanly as ctrl-c; shells
    # without job control start background children with SIGINT ignored, so
    # TERM is the only reliably deliverable stop signal there.  Installed
    # before the banner: once the address is printed, a TERM is never fatal.
    import signal

    previous = signal.signal(signal.SIGTERM, lambda signum, frame: daemon.request_stop())
    try:
        daemon.start()
    except OSError as exc:
        signal.signal(signal.SIGTERM, previous)
        raise SystemExit(f"error: cannot bind {args.addr}: {exc}")
    print(
        f"serving {args.root} ({len(store)} entries) at {daemon.address} "
        f"(cache {args.cache_blocks} blocks / {args.cache_mb:g} MiB; ctrl-c to stop)",
        flush=True,
    )
    try:
        daemon.serve_forever(timeout=args.seconds)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        stats = daemon.stats()
        daemon.stop()
    print(
        f"daemon stopped after {stats['requests']} requests "
        f"({stats['reads']} reads, {stats['blocks_decoded']} blocks decoded, "
        f"{stats['cache']['hits']} cache hits, "
        f"{stats['cache']['bytes_resident']} B resident)"
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.compressors.errors import DecompressionError

    if args.store_command == "read" and args.remote is not None:
        return _cmd_store_read_remote(args)
    store = _open_store(args.root)
    if args.store_command == "ls":
        print(store.summary())
        return 0
    try:
        view = store.array(args.field, args.step, level=args.level)
        if args.store_command == "get":
            field = view[...]
            np.save(args.output, field)
            print(
                f"decoded {args.field} step {args.step} level {args.level} -> "
                f"{args.output}, shape {field.shape} "
                f"({view.stats['blocks_decoded']} blocks)"
            )
        elif args.store_command == "roi":
            bbox = _parse_bbox(args.bbox)
            try:
                field = view.read_roi(bbox)
            except ValueError as exc:
                raise SystemExit(f"error: {exc}")
            np.save(args.output, field)
            print(
                f"decoded roi {args.bbox} of {args.field} step {args.step} level "
                f"{args.level} -> {args.output}, shape {field.shape} "
                f"(decoded {view.stats['blocks_decoded']}/{view.n_blocks} blocks)"
            )
        else:  # read
            index = _parse_index(args.index)
            try:
                field = np.asarray(view[index])
            except (ValueError, IndexError, TypeError) as exc:
                raise SystemExit(f"error: {exc}")
            np.save(args.output, field)
            stats = view.stats
            print(
                f"read [{args.index}] of {args.field} step {args.step} level "
                f"{args.level} -> {args.output}, shape {field.shape} "
                f"(decoded {stats['blocks_decoded']}/{view.n_blocks} blocks in "
                f"{stats.get('fetch_ranges', 0)} coalesced fetches, "
                f"cache hits {stats.get('cache_hits', 0)}, "
                f"cache resident {stats.get('cache_bytes_resident', 0)} B)"
            )
        return 0
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    except DecompressionError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats ADDR``: scrape a daemon's telemetry surface.

    One ``stats`` round trip per scrape; ``--prom`` renders the registry
    snapshot as Prometheus text (what a scrape job would ingest), otherwise
    the full stats response prints as JSON.
    """
    import time as _time

    from repro.obs import render_prometheus
    from repro.serve import ProtocolError, RemoteStore

    try:
        with RemoteStore(args.addr) as client:
            while True:
                stats = client.stats()
                if args.prom:
                    # render_prometheus output is newline-terminated already;
                    # print() would add a blank line scrapers reject.
                    sys.stdout.write(render_prometheus(stats.get("metrics", [])))
                    sys.stdout.flush()
                else:
                    print(json.dumps(stats, indent=2, sort_keys=True), flush=True)
                if not args.watch:
                    break
                _time.sleep(max(0.1, args.interval))
    except OSError as exc:
        raise SystemExit(f"error: cannot connect to daemon at {args.addr}: {exc}")
    except ProtocolError as exc:
        raise SystemExit(f"error: {exc}")
    except KeyboardInterrupt:
        pass
    return 0


def _load_shard_map(path: Path):
    from repro.shard import ShardMap

    try:
        return ShardMap.load(path)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_shard(args: argparse.Namespace) -> int:
    if args.shard_command == "split":
        return _cmd_shard_split(args)
    if args.shard_command == "plan":
        return _cmd_shard_plan(args)
    if args.shard_command == "rebalance":
        return _cmd_shard_rebalance(args)
    return _cmd_shard_serve(args)


def _cmd_shard_split(args: argparse.Namespace) -> int:
    from repro.shard import split_store

    source = _open_store(args.source)
    placed = split_store(source, _load_shard_map(args.topology))
    for name in sorted(placed):
        keys = placed[name]
        print(f"{name}: {len(keys)} entries" + (f" ({', '.join(keys)})" if keys else ""))
    print(f"split {len(source)} entries across {len(placed)} shards (source intact)")
    return 0


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    from repro.shard import plan_for_stores

    moves = plan_for_stores(_load_shard_map(args.old), _load_shard_map(args.new))
    print(json.dumps([m.to_dict() for m in moves], indent=2))
    print(f"{len(moves)} moves", file=sys.stderr)
    return 0


def _cmd_shard_rebalance(args: argparse.Namespace) -> int:
    from repro.shard import execute_plan, plan_for_stores

    if args.copy_only and args.prune_only:
        raise SystemExit("error: --copy-only and --prune-only are mutually exclusive")
    old, new = _load_shard_map(args.old), _load_shard_map(args.new)
    moves = plan_for_stores(old, new)
    result = execute_plan(
        moves,
        old,
        new,
        copy=not args.prune_only,
        prune=not args.copy_only,
    )
    phase = "copy+prune"
    if args.copy_only:
        phase = "copy"
    elif args.prune_only:
        phase = "prune"
    print(
        f"rebalanced ({phase}): {result['moves']} moves, "
        f"{result['copied']} copied, {result['pruned']} pruned"
    )
    return 0


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    from repro.obs import TRACER, configure_logging
    from repro.serve import parse_address
    from repro.shard import RouterDaemon, ShardError, ShardMap

    try:
        host, port = parse_address(args.addr)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    shard_map = _load_shard_map(args.topology)
    if args.replicas is not None:
        try:
            shard_map = ShardMap(
                shard_map.shards,
                virtual_nodes=shard_map.virtual_nodes,
                replicas=args.replicas,
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    configure_logging(verbosity=args.verbose, json_lines=args.log_json)
    if args.trace:
        TRACER.enable()
    if args.pool_size < 1:
        raise SystemExit("error: --pool-size must be >= 1")
    if args.breaker_threshold < 1:
        raise SystemExit("error: --breaker-threshold must be >= 1")
    router = RouterDaemon(
        shard_map,
        host=host,
        port=port,
        slow_ms=args.slow_ms,
        retries=args.connect_retries,
        pool_size=args.pool_size,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        probe_interval=args.probe_interval,
    )
    # Same SIGTERM discipline as `repro serve`: installed before the banner,
    # so once the address is printed a TERM always exits cleanly.
    import signal

    previous = signal.signal(signal.SIGTERM, lambda signum, frame: router.request_stop())
    try:
        router.start()
    except (OSError, ShardError) as exc:
        signal.signal(signal.SIGTERM, previous)
        raise SystemExit(f"error: cannot start router: {exc}")
    print(
        f"routing {len(shard_map.shards)} shards "
        f"({', '.join(s.name + '=' + s.address for s in shard_map.shards)}) "
        f"at {router.address} "
        f"(replicas {shard_map.replicas}, breaker threshold "
        f"{args.breaker_threshold}; ctrl-c to stop)",
        flush=True,
    )
    try:
        router.serve_forever(timeout=args.seconds)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        stats = router.stats()
        router.stop()
    print(
        f"router stopped after {stats['requests']} requests "
        f"({stats['reads_forwarded']} reads forwarded, "
        f"{stats['relay_bytes']} B relayed, "
        f"{stats['backend_errors']} backend errors)"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos LISTEN UPSTREAM``: a fault-injecting proxy for one daemon.

    Point a router's topology at the proxy's address instead of the daemon's
    and the scheduled faults exercise the failover path: refused dials trip
    the circuit breaker, corrupted frames surface as checksum mismatches,
    mid-frame disconnects as connection resets — all deterministically,
    because the fault is a pure function of ``(seed, connection index)``.
    """
    from repro.chaos import FAULTS, ChaosProxy, ChaosSchedule
    from repro.obs import configure_logging
    from repro.serve import parse_address

    try:
        host, port = parse_address(args.listen)
        up_host, up_port = parse_address(args.upstream)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.script is not None and args.weights is not None:
        raise SystemExit("error: --script and --weights are mutually exclusive")
    try:
        if args.script is not None:
            script = [part.strip() for part in args.script.split(",") if part.strip()]
            if not script:
                raise SystemExit("error: --script needs at least one fault")
            schedule = ChaosSchedule(script, seed=args.seed)
        elif args.weights is not None:
            weights = {}
            for part in args.weights.split(","):
                fault, sep, weight = part.strip().partition("=")
                if not sep or fault not in FAULTS:
                    raise SystemExit(
                        f"error: bad weight {part.strip()!r}; expected FAULT=N "
                        f"with FAULT in {', '.join(FAULTS)}"
                    )
                weights[fault] = int(weight)
            schedule = ChaosSchedule.random(args.seed, weights=weights)
        else:
            schedule = ChaosSchedule.random(args.seed)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    configure_logging(verbosity=getattr(args, "verbose", 0))
    proxy = ChaosProxy(
        (up_host, up_port),
        schedule=schedule,
        host=host,
        port=port,
        timeout=args.hang_timeout,
    )
    # Same SIGTERM discipline as `repro serve`: installed before the banner,
    # so once the address is printed a TERM always exits cleanly.
    import signal

    previous = signal.signal(signal.SIGTERM, lambda signum, frame: proxy.request_stop())
    try:
        proxy.start()
    except OSError as exc:
        signal.signal(signal.SIGTERM, previous)
        raise SystemExit(f"error: cannot start chaos proxy: {exc}")
    print(
        f"chaos proxy for {proxy.upstream} at {proxy.address} "
        f"({schedule!r}; ctrl-c to stop)",
        flush=True,
    )
    try:
        proxy.serve_forever(timeout=args.seconds)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        stats = proxy.stats()
        proxy.stop()
    injected = {f: n for f, n in stats["faults"].items() if n and f != "pass"}
    print(
        f"chaos proxy stopped after {stats['connections']} connections "
        f"(faults injected: {injected or 'none'})"
    )
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    from repro.gateway import GatewayDaemon
    from repro.obs import TRACER, configure_logging
    from repro.serve import ReadDaemon, parse_address
    from repro.serve.protocol import ProtocolError

    if (args.root is None) == (args.router is None):
        raise SystemExit("error: give exactly one of ROOT or --router ADDR")
    try:
        http_host, http_port = parse_address(args.http)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.pool_size < 1:
        raise SystemExit("error: --pool-size must be >= 1")
    configure_logging(verbosity=args.verbose, json_lines=args.log_json)
    if args.trace:
        TRACER.enable()

    inner = None
    if args.root is not None:
        # Self-contained mode: an in-process read daemon on a loopback port
        # that only this gateway talks to.
        store = _open_store(args.root)
        inner = ReadDaemon(store)
        backend = inner.start()
        backend_label = f"{args.root} ({len(store)} entries)"
    else:
        try:
            backend_host, backend_port = parse_address(args.router)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        backend = f"{backend_host}:{backend_port}"
        backend_label = backend

    daemon = GatewayDaemon(
        backend,
        host=http_host,
        port=http_port,
        pool_size=args.pool_size,
        max_connections=args.max_connections,
        request_timeout=args.request_timeout,
        retries=args.connect_retries,
    )
    # Same SIGTERM discipline as `repro serve`: installed before the banner,
    # so once the address is printed a TERM always exits cleanly.
    import signal

    previous = signal.signal(signal.SIGTERM, lambda signum, frame: daemon.request_stop())
    try:
        daemon.start()
    except (OSError, ProtocolError) as exc:
        signal.signal(signal.SIGTERM, previous)
        if inner is not None:
            inner.stop()
        raise SystemExit(f"error: cannot start gateway: {exc}")
    print(
        f"gateway for {backend_label} at http://{daemon.address}/ "
        f"(pool {args.pool_size}, max {args.max_connections} connections; "
        f"ctrl-c to stop)",
        flush=True,
    )
    try:
        daemon.serve_forever(timeout=args.seconds)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        stats = daemon.stats()
        daemon.stop()
        if inner is not None:
            inner.stop()
    print(
        f"gateway stopped after {stats['requests']} requests "
        f"({stats['errors']} errors, {stats['http_bytes_sent']} B sent, "
        f"{len(stats['clients'])} clients)"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import run_config

    if not args.config.exists():
        raise SystemExit(f"error: config file {args.config} does not exist")
    summary, _ = run_config(
        args.config,
        input_path=args.input,
        save_reconstruction=args.save_reconstruction,
    )
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if args.output_json is not None:
        args.output_json.write_text(text + "\n", "utf-8")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported here: the devtools package (ast walking, rule registry) should
    # cost nothing on the serving/compression paths.
    from repro.devtools import lint as lintmod

    if args.list_rules:
        for rule in lintmod.LintEngine().rules:
            print(f"{rule.id}: {rule.help}")
        return 0

    paths = [Path(p) for p in args.paths] or [Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise SystemExit(f"error: no such path: {missing[0]}")
    baseline_path = args.baseline
    if baseline_path is None:
        anchor = paths[0] if paths[0].is_dir() else paths[0].parent
        for candidate in [anchor, *anchor.parents]:
            if (candidate / lintmod.BASELINE_NAME).exists():
                baseline_path = candidate / lintmod.BASELINE_NAME
                break

    findings = lintmod.lint_paths(paths)

    if args.write_baseline:
        target = baseline_path or Path(lintmod.BASELINE_NAME)
        lintmod.write_baseline(findings, target)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    grandfathered = 0
    if baseline_path is not None:
        try:
            baseline = lintmod.load_baseline(baseline_path)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        findings, grandfathered = lintmod.apply_baseline(findings, baseline)

    if args.as_json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding)
        suffix = f" ({grandfathered} baselined)" if grandfathered else ""
        print(f"{len(findings)} finding(s){suffix}")
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.compressors.errors import CompressorError

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compress": _cmd_compress,
        "decompress": _cmd_decompress,
        "info": _cmd_info,
        "evaluate": _cmd_evaluate,
        "store": _cmd_store,
        "serve": _cmd_serve,
        "shard": _cmd_shard,
        "chaos": _cmd_chaos,
        "gateway": _cmd_gateway,
        "stats": _cmd_stats,
        "lint": _cmd_lint,
        "run": _cmd_run,
    }
    try:
        return handlers[args.command](args)
    except (CompressorError, ValueError, OSError) as exc:
        # Operational failures (bad specs, unreadable files, bound violations)
        # become a one-line diagnostic instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
