"""Figure 12 (and Fig. 13's rationale) — post-processing variants on WarpX + ZFP.

Paper: applying the Bezier curve without the error-bound clamp ("Bezier")
destroys quality; clamping at the full error bound ("a = 1") barely helps;
the dynamic limit ("Process") clearly improves over raw ZFP across the whole
rate range.  The reproduction sweeps error bounds on the WarpX field and
reports PSNR for the four variants.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.analysis import psnr
from repro.compressors import ZFPCompressor
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth

EB_FRACTIONS = (0.005, 0.01, 0.02, 0.04, 0.08)


def _unclamped_bezier(decompressed, block_size):
    """Bezier smoothing with no error-bound clamp (the paper's "Bezier" curve)."""
    out = decompressed.copy()
    huge = 1e30  # effectively no clamp
    return bezier_boundary_smooth(out, block_size=block_size, error_bound=huge, intensity=1.0)


def _run():
    ds = dataset("warpx")
    field = ds.field
    compressor = ZFPCompressor()
    bounds = relative_error_bounds(field, EB_FRACTIONS)
    pp = PostProcessor("zfp")
    rows = []
    for eb in bounds:
        result = compressor.roundtrip(field, eb)
        deco = result.decompressed
        plan = pp.plan(field, compressor, eb)
        processed = pp.apply(deco, plan)
        full_intensity = bezier_boundary_smooth(deco, block_size=4, error_bound=eb, intensity=1.0)
        unclamped = _unclamped_bezier(deco, block_size=4)
        rows.append(
            {
                "cr": result.compression_ratio,
                "zfp": psnr(field, deco),
                "bezier": psnr(field, unclamped),
                "a1": psnr(field, full_intensity),
                "processed": psnr(field, processed),
            }
        )
    return rows


def test_fig12_postprocess_ablation(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        format_table(
            "Fig. 12 — WarpX + ZFP post-processing variants (PSNR per CR)",
            ["CR", "ZFP", "Bezier (no clamp)", "a=1", "Processed (dynamic)"],
            [[r["cr"], r["zfp"], r["bezier"], r["a1"], r["processed"]] for r in rows],
        )
    )
    for r in rows:
        # the dynamic limit never hurts relative to raw ZFP ...
        assert r["processed"] >= r["zfp"] - 1e-9
        # ... and clamping is essential: the unclamped Bezier is the worst variant
        assert r["bezier"] <= r["processed"] + 1e-9
    # somewhere in the sweep the dynamic intensity must beat the naive a=1 clamp
    assert any(r["processed"] >= r["a1"] for r in rows)
