"""Store throughput — parallel block encode and random-access read latency.

Not a figure from the paper: this benchmark characterises the new
:mod:`repro.store` subsystem against the v1 whole-container path it
supersedes, on a >=256^3 synthetic field (override the edge length with
``REPRO_BENCH_STORE_SIZE`` for quick local runs).

Two questions are answered:

1. **Encode throughput** — MB/s of per-block encoding through the codec
   engine, serial vs. multi-worker (process pool, chunked submission).  On a
   multi-core host the multi-worker path must reach >= 1.5x serial; on a
   single core the rows are still printed but the speedup assertion is
   vacuous (there is nothing to scale onto).
2. **Random-access latency** — wall time and bytes touched to read a small
   ROI from the block store vs. inflating the v1 container whole, plus the
   decode-call accounting that proves only intersecting blocks were touched.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _helpers import format_table
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.partition import extract_unit_blocks
from repro.datasets.synthetic import smooth_wave_field
from repro.insitu.io import read_compressed_hierarchy, write_compressed_hierarchy
from repro.insitu.scheduler import default_workers
from repro.store import BlockLevel, CodecEngine, ContainerReader, write_container

EDGE = int(os.environ.get("REPRO_BENCH_STORE_SIZE", "256"))
UNIT = 16
EB = 1e-3
ROI_EDGE = 32


def _field() -> np.ndarray:
    return smooth_wave_field((EDGE, EDGE, EDGE), frequencies=(3.0, 5.0, 2.0))


def _encode_rows(field):
    block_set = extract_unit_blocks(field, unit_size=UNIT)
    nbytes = field.nbytes
    workers = default_workers()
    configs = [("serial x1", CodecEngine(executor="serial"))]
    if workers > 1:
        configs.append(
            (f"process x{workers}", CodecEngine(executor="process", max_workers=workers))
        )
    else:
        # Single-core host: still exercise the pool machinery so the row is
        # honest about its overhead, but no speedup is physically possible.
        configs.append(("process x2 (1 core)", CodecEngine(executor="process", max_workers=2)))

    rows, times = [], {}
    payloads = None
    for label, engine in configs:
        start = time.perf_counter()
        payloads = engine.encode_blocks(block_set.blocks, EB)
        elapsed = time.perf_counter() - start
        times[label] = elapsed
        rows.append([label, elapsed, nbytes / elapsed / 1e6, len(payloads)])
    speedup = times[configs[0][0]] / times[configs[1][0]]
    return block_set, payloads, rows, speedup, workers


def _random_access_rows(tmp_path, field, block_set, payloads):
    # v2 block store container.
    v2_path = tmp_path / "field.rps2"
    write_container(
        v2_path,
        [
            BlockLevel(
                level=0,
                level_shape=block_set.level_shape,
                unit_size=block_set.unit_size,
                coords=block_set.coords,
                payloads=payloads,
            )
        ],
        error_bound=EB,
        codec="sz3",
    )
    # v1 whole-container path for the same data (one merged level payload).
    from repro.core.mr_compressor import CompressedHierarchy

    mrc = MultiResolutionCompressor(unit_size=UNIT)
    v1_path = tmp_path / "field.rpmh"
    v1_level = mrc.compress_level(field, None, EB)
    write_compressed_hierarchy(
        v1_path, CompressedHierarchy(levels=[v1_level], error_bound=EB)
    )

    lo = (EDGE - ROI_EDGE) // 2
    bbox = ((lo, lo + ROI_EDGE),) * 3
    sl = tuple(slice(a, b) for a, b in bbox)
    expected_blocks = int(
        np.prod([-(-hi // UNIT) - lo_ // UNIT for lo_, hi in bbox])
    )

    reader = ContainerReader(v2_path)
    start = time.perf_counter()
    roi = reader.read_roi(bbox)
    t_v2 = time.perf_counter() - start
    assert np.abs(roi - field[sl]).max() <= EB * (1 + 1e-9)

    start = time.perf_counter()
    restored = read_compressed_hierarchy(v1_path)
    full = mrc.decompress_level(restored.levels[0])
    t_v1 = time.perf_counter() - start
    assert np.abs(full[sl] - field[sl]).max() <= EB * (1 + 1e-9)

    total_blocks = reader.level_info(0).n_blocks
    rows = [
        [
            "v2 read_roi",
            t_v2,
            reader.stats["blocks_decoded"],
            total_blocks,
            reader.stats["payload_bytes_read"],
        ],
        ["v1 whole container", t_v1, total_blocks, total_blocks, v1_path.stat().st_size],
    ]
    return rows, t_v1, t_v2, reader.stats["blocks_decoded"], total_blocks, expected_blocks


def _run(tmp_path):
    field = _field()
    block_set, payloads, enc_rows, speedup, workers = _encode_rows(field)
    ra_rows, t_v1, t_v2, touched, total, expected = _random_access_rows(
        tmp_path, field, block_set, payloads
    )
    return {
        "enc_rows": enc_rows,
        "speedup": speedup,
        "workers": workers,
        "ra_rows": ra_rows,
        "t_v1": t_v1,
        "t_v2": t_v2,
        "touched": touched,
        "total": total,
        "expected": expected,
    }


@pytest.mark.slow
def test_store_throughput(benchmark, report, tmp_path):
    results = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    report(
        format_table(
            f"Store encode throughput — {EDGE}^3 field, unit {UNIT}, sz3 @ eb {EB}",
            ["engine", "time [s]", "MB/s", "blocks"],
            results["enc_rows"],
        )
    )
    report(
        format_table(
            f"Random access — {ROI_EDGE}^3 ROI out of {EDGE}^3",
            ["path", "time [s]", "blocks decoded", "blocks total", "bytes read"],
            results["ra_rows"],
        )
    )
    report(
        f"multi-worker speedup: {results['speedup']:.2f}x on {results['workers']} core(s); "
        f"roi latency {results['t_v2']:.3f}s vs whole-container {results['t_v1']:.3f}s"
    )
    # Shape assertions: random access must touch only the intersecting blocks
    # and beat inflating the container whole; the parallel-encode speedup is
    # only demanded when the host actually has cores to scale onto.
    assert results["touched"] == results["expected"]
    assert results["touched"] < results["total"]
    assert results["t_v2"] < results["t_v1"]
    if results["workers"] > 1:
        assert results["speedup"] >= 1.5
