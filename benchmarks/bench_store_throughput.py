"""Store throughput — parallel block encode/decode and random-access latency.

Not a figure from the paper: this benchmark characterises the
:mod:`repro.store` subsystem against the v1 whole-container path it
supersedes, on a >=256^3 synthetic field (override the edge length with
``REPRO_BENCH_STORE_SIZE`` for quick local runs).

Three questions are answered:

1. **Encode throughput** — MB/s of per-block encoding through the codec
   engine, serial vs. multi-worker (process pool, chunked submission).
2. **Decode throughput** — MB/s of batched per-block decoding through the
   same engine backends; this is the path every lazy-view query and the
   future read daemon sit on.
3. **Random-access latency** — wall time and bytes touched to read a small
   ROI through the lazy view vs. inflating the v1 container whole, plus the
   decode-call accounting that proves only intersecting blocks were touched.

On a multi-core host both pool paths must reach >= 1.5x serial; on a single
core the rows are still printed but the speedup assertions are vacuous
(there is nothing to scale onto).  The numbers land in
``BENCH_store_throughput.json`` with the backend and worker count of every
row, so a result file is interpretable without the run log.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _helpers import format_table, record_bench
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.partition import extract_unit_blocks
from repro.datasets.synthetic import smooth_wave_field
from repro.insitu.io import read_compressed_hierarchy, write_compressed_hierarchy
from repro.insitu.scheduler import default_workers
from repro.store import BlockLevel, CodecEngine, ContainerReader, write_container

EDGE = int(os.environ.get("REPRO_BENCH_STORE_SIZE", "256"))
UNIT = 16
EB = 1e-3
ROI_EDGE = 32


def _field() -> np.ndarray:
    return smooth_wave_field((EDGE, EDGE, EDGE), frequencies=(3.0, 5.0, 2.0))


def _engine_configs():
    """(label, backend, workers, engine) rows: serial plus one pool config."""
    workers = default_workers()
    configs = [("serial x1", "serial", 1, CodecEngine(executor="serial"))]
    if workers > 1:
        configs.append(
            (
                f"process x{workers}",
                "process",
                workers,
                CodecEngine(executor="process", max_workers=workers),
            )
        )
    else:
        # Single-core host: still exercise the pool machinery so the row is
        # honest about its overhead, but no speedup is physically possible.
        configs.append(
            (
                "process x2 (1 core)",
                "process",
                2,
                CodecEngine(executor="process", max_workers=2),
            )
        )
    return workers, configs


def _encode_rows(field):
    block_set = extract_unit_blocks(field, unit_size=UNIT)
    nbytes = field.nbytes
    workers, configs = _engine_configs()

    rows, times = [], []
    payloads = None
    for label, backend, n_workers, engine in configs:
        start = time.perf_counter()
        payloads = engine.encode_blocks(block_set.blocks, EB)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        rows.append(
            {
                "label": label,
                "backend": backend,
                "workers": n_workers,
                "time_s": elapsed,
                "mb_per_s": nbytes / elapsed / 1e6,
                "blocks": len(payloads),
            }
        )
    speedup = times[0] / times[1]
    return block_set, payloads, rows, speedup, workers


def _decode_rows(payloads, nbytes):
    """Batched decode throughput through the engine backends (ROADMAP item)."""
    workers, configs = _engine_configs()
    rows, times = [], []
    for label, backend, n_workers, engine in configs:
        start = time.perf_counter()
        blocks = engine.decode_blocks(payloads)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        rows.append(
            {
                "label": label,
                "backend": backend,
                "workers": n_workers,
                "time_s": elapsed,
                "mb_per_s": nbytes / elapsed / 1e6,
                "blocks": len(blocks),
            }
        )
    return rows, times[0] / times[1]


def _random_access_rows(tmp_path, field, block_set, payloads):
    # v2 block store container.
    v2_path = tmp_path / "field.rps2"
    write_container(
        v2_path,
        [
            BlockLevel(
                level=0,
                level_shape=block_set.level_shape,
                unit_size=block_set.unit_size,
                coords=block_set.coords,
                payloads=payloads,
            )
        ],
        error_bound=EB,
        codec="sz3",
    )
    # v1 whole-container path for the same data (one merged level payload).
    from repro.core.mr_compressor import CompressedHierarchy

    mrc = MultiResolutionCompressor(unit_size=UNIT)
    v1_path = tmp_path / "field.rpmh"
    v1_level = mrc.compress_level(field, None, EB)
    write_compressed_hierarchy(
        v1_path, CompressedHierarchy(levels=[v1_level], error_bound=EB)
    )

    lo = (EDGE - ROI_EDGE) // 2
    bbox = ((lo, lo + ROI_EDGE),) * 3
    sl = tuple(slice(a, b) for a, b in bbox)
    expected_blocks = int(
        np.prod([-(-hi // UNIT) - lo_ // UNIT for lo_, hi in bbox])
    )

    reader = ContainerReader(v2_path)
    view = reader.as_array()
    start = time.perf_counter()
    roi = view[sl]
    t_v2 = time.perf_counter() - start
    assert np.abs(roi - field[sl]).max() <= EB * (1 + 1e-9)

    start = time.perf_counter()
    restored = read_compressed_hierarchy(v1_path)
    full = mrc.decompress_level(restored.levels[0])
    t_v1 = time.perf_counter() - start
    assert np.abs(full[sl] - field[sl]).max() <= EB * (1 + 1e-9)

    total_blocks = reader.level_info(0).n_blocks
    rows = [
        [
            "v2 lazy view[roi]",
            t_v2,
            reader.stats["blocks_decoded"],
            total_blocks,
            reader.stats["payload_bytes_read"],
        ],
        ["v1 whole container", t_v1, total_blocks, total_blocks, v1_path.stat().st_size],
    ]
    return rows, t_v1, t_v2, reader.stats["blocks_decoded"], total_blocks, expected_blocks


def _run(tmp_path):
    field = _field()
    block_set, payloads, enc_rows, enc_speedup, workers = _encode_rows(field)
    dec_rows, dec_speedup = _decode_rows(payloads, field.nbytes)
    ra_rows, t_v1, t_v2, touched, total, expected = _random_access_rows(
        tmp_path, field, block_set, payloads
    )
    return {
        "enc_rows": enc_rows,
        "enc_speedup": enc_speedup,
        "dec_rows": dec_rows,
        "dec_speedup": dec_speedup,
        "workers": workers,
        "ra_rows": ra_rows,
        "t_v1": t_v1,
        "t_v2": t_v2,
        "touched": touched,
        "total": total,
        "expected": expected,
    }


def _engine_table(title, rows):
    return format_table(
        title,
        ["engine", "backend", "workers", "time [s]", "MB/s", "blocks"],
        [
            [r["label"], r["backend"], r["workers"], r["time_s"], r["mb_per_s"], r["blocks"]]
            for r in rows
        ],
    )


@pytest.mark.slow
def test_store_throughput(benchmark, report, tmp_path):
    results = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    report(
        _engine_table(
            f"Store encode throughput — {EDGE}^3 field, unit {UNIT}, sz3 @ eb {EB}",
            results["enc_rows"],
        )
    )
    report(
        _engine_table(
            f"Store decode throughput — {results['enc_rows'][0]['blocks']} blocks, "
            "batched through CodecEngine",
            results["dec_rows"],
        )
    )
    report(
        format_table(
            f"Random access — {ROI_EDGE}^3 ROI out of {EDGE}^3",
            ["path", "time [s]", "blocks decoded", "blocks total", "bytes read"],
            results["ra_rows"],
        )
    )
    report(
        f"speedups on {results['workers']} core(s): encode "
        f"{results['enc_speedup']:.2f}x, decode {results['dec_speedup']:.2f}x; "
        f"roi latency {results['t_v2']:.3f}s vs whole-container {results['t_v1']:.3f}s"
    )
    record_bench(
        "store_throughput",
        {
            "edge": EDGE,
            "unit_size": UNIT,
            "error_bound": EB,
            "roi_edge": ROI_EDGE,
            "cpu_count": os.cpu_count(),
            "workers": results["workers"],
            "encode": {"rows": results["enc_rows"], "speedup": results["enc_speedup"]},
            "decode": {"rows": results["dec_rows"], "speedup": results["dec_speedup"]},
            "random_access": {
                "roi_time_s": results["t_v2"],
                "whole_container_time_s": results["t_v1"],
                "blocks_decoded": results["touched"],
                "blocks_total": results["total"],
            },
        },
    )
    # Shape assertions: random access must touch only the intersecting blocks
    # and beat inflating the container whole; the pool speedups are only
    # demanded when the host actually has cores to scale onto.
    assert results["touched"] == results["expected"]
    assert results["touched"] < results["total"]
    assert results["t_v2"] < results["t_v1"]
    if (os.cpu_count() or 1) > 1:
        assert results["enc_speedup"] >= 1.5
        assert results["dec_speedup"] >= 1.5
