"""Table IX — post-processing overhead relative to the compression workflow.

Paper (S3D, 64 cores): sampling + modelling plus the Bezier pass add only
~1.3 % to the serial-SZ2 workflow and ~3.5 % to the OpenMP-accelerated
SZ2/ZFP workflows.  The reproduction times the same four phases (I/O,
compress + decompress, sample + model, process) on the synthetic S3D field
and checks the relative overhead stays small.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.compressors import SZ2Compressor, ZFPCompressor
from repro.core.postprocess import PostProcessor
from repro.insitu import write_compressed_array, read_compressed_array
from repro.utils.timer import TimingBreakdown

EB_LABELS = (("small", 0.002), ("mid", 0.01), ("large", 0.04))


def _run(tmp_path):
    ds = dataset("s3d")
    field = ds.field
    results = {}
    for codec_name, compressor in (("zfp", ZFPCompressor()), ("sz2", SZ2Compressor())):
        pp = PostProcessor(codec_name)
        for label, fraction in EB_LABELS:
            (eb,) = relative_error_bounds(field, (fraction,))
            timings = TimingBreakdown()
            with timings.phase("comp+decomp"):
                compressed = compressor.compress(field, eb)
                decompressed = compressor.decompress(compressed)
            with timings.phase("io"):
                path = tmp_path / f"{codec_name}_{label}.rpca"
                write_compressed_array(path, compressed)
                read_compressed_array(path)
            with timings.phase("sample+model"):
                plan = pp.plan(field, compressor, eb)
            with timings.phase("process"):
                pp.apply(decompressed, plan)
            original = timings["io"] + timings["comp+decomp"]
            extra = timings["sample+model"] + timings["process"]
            results[(codec_name, label)] = {
                "io": timings["io"],
                "comp": timings["comp+decomp"],
                "sample": timings["sample+model"],
                "process": timings["process"],
                "overhead": extra / original if original > 0 else 0.0,
            }
    return results


def test_table9_postprocess_overhead(benchmark, report, tmp_path):
    results = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    rows = []
    for (codec, label), r in results.items():
        rows.append(
            [codec, label, r["io"], r["comp"], r["sample"], r["process"], f"{100 * r['overhead']:.1f}%"]
        )
    report(
        format_table(
            "Table IX — post-processing overhead on S3D (paper: 1.3% serial SZ2, ~3.5% OpenMP SZ2/ZFP)",
            ["codec", "eb", "1. I/O [s]", "2. comp+decomp [s]", "3. sample+model [s]", "4. process [s]", "overhead"],
            rows,
        )
    )
    # Shape: the post-processing stages stay cheap.  At 64^3 the baseline
    # workflow itself only takes tens of milliseconds, so the *ratio* is noisy
    # (the paper's 1.3-3.5 % figures are measured against a 512^3 workflow);
    # we therefore check the absolute extra cost is negligible and that the
    # typical relative overhead stays small.
    import numpy as np

    extras = [r["sample"] + r["process"] for r in results.values()]
    overheads = [r["overhead"] for r in results.values()]
    assert all(extra < 0.5 for extra in extras)
    assert float(np.median(overheads)) < 0.35
