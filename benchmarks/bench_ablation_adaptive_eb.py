"""Ablation — adaptive error-bound constants alpha / beta (§III-A, improvement 2).

The paper fixes alpha = 2.25 and beta = 8 (more aggressive than QoZ) after
offline experiments.  The ablation compares the paper's constants against a
weaker schedule, a much stronger one and no schedule at all, in
rate-distortion space on the WarpX adaptive dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, format_table, psnr_at_cr, relative_error_bounds, sweep_hierarchy
from repro.core.mr_compressor import MultiResolutionCompressor

EB_FRACTIONS = (0.005, 0.01, 0.02, 0.04, 0.08)

CONFIGS = {
    "no adaptive eb": dict(adaptive_eb=False),
    "alpha=1.5, beta=4": dict(adaptive_eb=True, alpha=1.5, beta=4.0),
    "alpha=2.25, beta=8 (paper)": dict(adaptive_eb=True, alpha=2.25, beta=8.0),
    "alpha=4, beta=64": dict(adaptive_eb=True, alpha=4.0, beta=64.0),
}


def _run():
    ds = dataset("warpx")
    hierarchy = ds.hierarchy
    reference = hierarchy.to_uniform()
    bounds = relative_error_bounds(ds.field, EB_FRACTIONS)
    curves = {}
    for name, options in CONFIGS.items():
        mrc = MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding="auto", **options
        )
        curves[name] = sweep_hierarchy(mrc, hierarchy, reference, bounds)
    return curves


def test_ablation_adaptive_eb_constants(benchmark, report):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name] + [f"({p.compression_ratio:.0f}, {p.psnr:.1f})" for p in points]
        for name, points in curves.items()
    ]
    report(
        format_table(
            "Ablation — adaptive error-bound constants (WarpX, (CR, PSNR))",
            ["configuration"] + [f"eb={f:g}R" for f in EB_FRACTIONS],
            rows,
        )
    )
    # at a matched mid/high ratio the paper's constants beat no schedule at all
    target_cr = np.percentile([p.compression_ratio for p in curves["no adaptive eb"]], 60)
    paper = psnr_at_cr(curves["alpha=2.25, beta=8 (paper)"], target_cr)
    none = psnr_at_cr(curves["no adaptive eb"], target_cr)
    assert paper >= none - 0.3
