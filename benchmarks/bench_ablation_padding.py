"""Ablation — padding extrapolation mode and the u > 4 threshold (§III-A).

The paper tests constant / linear / quadratic pad values and finds linear
best overall, and only pads when the unit block size exceeds 4 because the
(u+1)^2/u^2 overhead otherwise eats the gain.  The ablation sweeps both
choices on the Nyx-T1 hierarchy.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, psnr_at_cr, relative_error_bounds, sweep_hierarchy
from repro.core.mr_compressor import MultiResolutionCompressor

EB_FRACTIONS = (0.005, 0.01, 0.02, 0.04)


def _run():
    ds = dataset("nyx-t1")
    hierarchy = ds.hierarchy
    reference = hierarchy.to_uniform()
    bounds = relative_error_bounds(ds.field, EB_FRACTIONS)

    curves = {}
    for mode in ("constant", "linear", "quadratic"):
        mrc = MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding=True, padding_mode=mode,
            adaptive_eb=True,
        )
        curves[f"pad:{mode}"] = sweep_hierarchy(mrc, hierarchy, reference, bounds)
    for unit in (4, 8, 16):
        mrc = MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding="auto", adaptive_eb=True,
            unit_size=unit,
        )
        curves[f"auto-pad:u={unit}"] = sweep_hierarchy(mrc, hierarchy, reference, bounds)
    return curves


def test_ablation_padding_mode_and_threshold(benchmark, report):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name] + [f"({p.compression_ratio:.0f}, {p.psnr:.1f})" for p in points]
        for name, points in curves.items()
    ]
    report(
        format_table(
            "Ablation — padding mode and unit-block size (Nyx-T1, (CR, PSNR))",
            ["configuration"] + [f"eb={f:g}R" for f in EB_FRACTIONS],
            rows,
        )
    )
    # linear padding must stay competitive with constant padding at a matched
    # ratio (the paper finds it best overall; on this synthetic field the two
    # are within a fraction of a dB of each other)
    target = curves["pad:constant"][1].compression_ratio
    assert psnr_at_cr(curves["pad:linear"], target) >= psnr_at_cr(curves["pad:constant"], target) - 0.5
    # every configuration stays a valid error-bounded compressor
    for points in curves.values():
        assert all(p.compression_ratio > 1.0 for p in points)
