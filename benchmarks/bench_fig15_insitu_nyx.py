"""Figure 15 — in-situ rate-distortion on Nyx AMR data (fine and coarse levels).

Paper: on Nyx-T1 (fine level, density 18 %; coarse level, density 82 %) the
SZ3MR curves ("Ours (pad)", "Ours (pad+eb)") dominate Baseline-SZ3 and
AMRIC-SZ3 at medium-to-high compression ratios; at the coarse level and small
ratios SZ3MR is slightly worse because of the padding overhead on small unit
blocks.  Here the same five curves are generated per level on the synthetic
Nyx-T1 stand-in and compared at a matched compression ratio.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, format_table, psnr_at_cr, relative_error_bounds, sweep_hierarchy
from repro.amr.grid import AMRHierarchy, AMRLevel
from repro.core.sz3mr import sz3mr_variants

EB_FRACTIONS = (0.002, 0.005, 0.01, 0.02, 0.04, 0.08)


def _single_level_hierarchy(level) -> AMRHierarchy:
    """Wrap one level as its own hierarchy so each level gets its own curve."""
    return AMRHierarchy([AMRLevel(level=0, data=level.data.copy(), mask=level.mask.copy())])


def _run_level(level_index: int):
    ds = dataset("nyx-t1")
    level = ds.hierarchy.levels[level_index]
    hierarchy = _single_level_hierarchy(level)
    reference = hierarchy.to_uniform()
    bounds = relative_error_bounds(level.data, EB_FRACTIONS)
    curves = {}
    # AMRIC has an in-situ implementation, TAC does not (offline only, Fig. 15
    # therefore omits it); we keep the same set of curves as the figure.
    for name, mrc in sz3mr_variants(include_tac=False).items():
        curves[name] = sweep_hierarchy(mrc, hierarchy, reference, bounds)
    return curves


@pytest.mark.parametrize("level_index,label", [(0, "fine (18%)"), (1, "coarse (82%)")])
def test_fig15_insitu_nyx_rate_distortion(benchmark, report, level_index, label):
    curves = benchmark.pedantic(_run_level, args=(level_index,), rounds=1, iterations=1)

    rows = []
    for name, points in curves.items():
        rows.append([name] + [f"({p.compression_ratio:.0f}, {p.psnr:.1f})" for p in points])
    report(
        format_table(
            f"Fig. 15 — Nyx-T1 {label} level, (CR, PSNR) per error bound",
            ["variant"] + [f"eb={f:g}R" for f in EB_FRACTIONS],
            rows,
        )
    )

    # Shape check at a matched higher compression ratio (where the paper's
    # gains concentrate): the full SZ3MR (pad+eb) must not lose to the
    # baseline or to AMRIC's stacking.
    target_cr = np.percentile([p.compression_ratio for p in curves["Baseline-SZ3"]], 75)
    ours = psnr_at_cr(curves["Ours (pad+eb)"], target_cr)
    baseline = psnr_at_cr(curves["Baseline-SZ3"], target_cr)
    amric = psnr_at_cr(curves["AMRIC-SZ3"], target_cr)
    assert ours >= baseline - 0.5
    assert ours >= amric - 0.5
