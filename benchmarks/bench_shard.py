"""Sharded serving — router relay overhead and N-shard aggregate throughput.

Not a figure from the paper: this benchmark prices the PR-7 shard layer.

* **warm relay** — the same warm whole-entry read through a direct daemon
  connection vs through the router in front of it.  The router's relay is
  zero-copy (header rewritten, payload bytes untouched), so on a
  daemon-side-dominated read the detour must cost at most 20% extra latency
  (asserted).
* **cold aggregate** — every entry read once, concurrently, against a
  fresh single daemon process vs three fresh shard daemon processes behind
  a router.  Decodes land on three processes instead of one, which is the
  scaling argument for sharding; aggregate bytes/s for both layouts are
  recorded but not asserted — the codec releases the GIL during decode, so
  on a many-core runner a single daemon already parallelises across its
  connection threads and the sharded win only appears once one process's
  cores (or its page cache) saturate.

Numbers land in ``BENCH_shard.json`` via :func:`record_bench`.  Runnable
two ways: through pytest like every other benchmark (``-m slow``), or as a
script — ``python benchmarks/bench_shard.py [--quick]`` — which is what the
``shard-smoke`` CI job executes on every PR.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))
from _helpers import format_table, record_bench
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.serve import ReadDaemon, RemoteStore, connect
from repro.shard import RouterDaemon, ShardMap, ShardSpec, split_store
from repro.store import Store
from repro.utils.rng import default_rng

QUICK = "--quick" in sys.argv or os.environ.get("REPRO_BENCH_SHARD_QUICK") == "1"
EDGE = 32 if QUICK else 48
UNIT = 4  # many small blocks: daemon-side assembly work dominates the wire
EB = 1e-2
FIELDS = ("density", "energy")  # two fields x N steps spreads over all shards
STEPS_PER_FIELD = 4
N_ENTRIES = len(FIELDS) * STEPS_PER_FIELD
SHARDS = ("s0", "s1", "s2")
WARM_REPEATS = 9 if QUICK else 15
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def _best_of(fn, repeats=WARM_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build(tmp_path):
    """A single store of N entries plus the same entries split three ways."""
    rng = default_rng("shard-bench")
    single = Store(tmp_path / "single", MultiResolutionCompressor(unit_size=UNIT))
    for field in FIELDS:
        for step in range(STEPS_PER_FIELD):
            single.append(field, step, rng.standard_normal((EDGE, EDGE, EDGE)), EB)
    stores = {name: Store(tmp_path / name) for name in SHARDS}
    placement = ShardMap(
        [ShardSpec(name, "0:0", store=str(tmp_path / name)) for name in SHARDS]
    )
    split_store(single, placement, stores=stores)
    return single, stores


def _spawn_daemon(root: Path):
    """``repro serve`` in its own process; returns (Popen, bound address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(root),
         "--addr", "127.0.0.1:0", "--seconds", "300"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()  # "serving ROOT (N entries) at HOST:PORT ..."
    parts = banner.partition(" at ")[2].split()
    if proc.poll() is not None or not parts:
        tail = proc.stdout.read() if proc.poll() is not None else ""
        raise RuntimeError(f"daemon failed to start: {banner!r} {tail!r}")
    address = parts[0]
    return proc, address


def _drain(address: str, keys):
    """Read every entry once, one thread + connection per entry; wall time."""

    def read_one(key):
        field, step = key
        with connect(address, retries=20) as client:
            return np.asarray(client[field, step][...]).nbytes

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(keys)) as pool:
        nbytes = sum(pool.map(read_one, keys))
    return time.perf_counter() - start, nbytes


def _run(tmp_path):
    single, stores = _build(tmp_path)
    keys = [(e.field, e.step) for e in single.entries()]
    payload_nbytes = EDGE**3 * 8
    results = {
        "edge": EDGE,
        "unit_size": UNIT,
        "n_entries": N_ENTRIES,
        "quick": QUICK,
        "shards": {n: len(s) for n, s in stores.items()},
    }

    # -- warm relay: direct daemon vs the router in front of it --------------
    # Everything in-process: the relay's cost is the extra hop itself.
    field, step = keys[0]
    daemons = {name: ReadDaemon(stores[name]) for name in SHARDS}
    shard_map = ShardMap(
        [
            ShardSpec(name, daemons[name].start(), store=str(stores[name].root))
            for name in SHARDS
        ]
    )
    owner = shard_map.owner_name(field, step)
    with ReadDaemon(single) as single_daemon, RouterDaemon(shard_map) as router:
        with RemoteStore(single_daemon.address) as direct, \
                RemoteStore(router.address) as routed:
            direct_arr = direct[field, step]
            routed_arr = routed[field, step]
            # Warm both paths: after this, every read is cache-served on the
            # daemon side (no decodes), the regime the relay bound targets.
            assert np.array_equal(
                np.asarray(direct_arr[...]), np.asarray(routed_arr[...])
            )
            direct_s = _best_of(lambda: direct_arr[...])
            routed_s = _best_of(lambda: routed_arr[...])
    results["warm_relay"] = {
        "owner_shard": owner,
        "payload_nbytes": payload_nbytes,
        "direct_s": direct_s,
        "routed_s": routed_s,
        "overhead": routed_s / max(direct_s, 1e-12) - 1.0,
    }

    # -- same-shard concurrency: the PR-9 connection pool vs the legacy shape -
    # N clients hammer one warm entry, so every request routes to the same
    # shard.  pool_size=1 reproduces the pre-pool router (one connection per
    # shard: relays queue); pool_size=N lets them overlap.  The deterministic
    # proof lives in tests/test_serve_pool.py (a slowed daemon makes the
    # bound exact); here we price the effect on real relays.
    n_conc = 6

    def _concurrent_same_shard(router_address):
        def read_one(_):
            with connect(router_address, retries=20) as client:
                return np.asarray(client[field, step][...]).nbytes

        def once():
            with ThreadPoolExecutor(max_workers=n_conc) as tp:
                assert sum(tp.map(read_one, range(n_conc))) == n_conc * payload_nbytes

        once()  # warm the backend pool and the shard's cache
        return _best_of(once, repeats=3)

    with RouterDaemon(shard_map, pool_size=1) as serial_router:
        serial_s = _concurrent_same_shard(serial_router.address)
    with RouterDaemon(shard_map, pool_size=n_conc) as pooled_router:
        pooled_s = _concurrent_same_shard(pooled_router.address)
    for daemon in daemons.values():
        daemon.stop()
    results["same_shard_concurrency"] = {
        "owner_shard": owner,
        "n_clients": n_conc,
        "payload_nbytes": payload_nbytes,
        "serialized_s": serial_s,
        "pooled_s": pooled_s,
        "speedup": serial_s / max(pooled_s, 1e-12),
    }

    # -- cold aggregate: one fresh process vs three, every entry read once ---
    procs = []
    try:
        proc, single_addr = _spawn_daemon(single.root)
        procs.append(proc)
        single_s, single_bytes = _drain(single_addr, keys)

        shard_specs = []
        for name in SHARDS:
            proc, addr = _spawn_daemon(stores[name].root)
            procs.append(proc)
            shard_specs.append(ShardSpec(name, addr, store=str(stores[name].root)))
        with RouterDaemon(ShardMap(shard_specs), retries=20) as router:
            sharded_s, sharded_bytes = _drain(router.address, keys)
        assert sharded_bytes == single_bytes == payload_nbytes * N_ENTRIES
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=30)
    results["cold_aggregate"] = {
        "total_nbytes": single_bytes,
        "single_s": single_s,
        "single_bps": single_bytes / single_s,
        "sharded_s": sharded_s,
        "sharded_bps": sharded_bytes / sharded_s,
        "speedup": single_s / max(sharded_s, 1e-12),
    }
    return results


def _check_and_report(results, report):
    wr, ca = results["warm_relay"], results["cold_aggregate"]
    ssc = results["same_shard_concurrency"]
    report(
        format_table(
            f"Sharded serving — {results['edge']}^3 x {results['n_entries']} "
            f"entries, unit {results['unit_size']}, shards "
            + "/".join(str(n) for n in results["shards"].values()),
            ["metric", "value"],
            [
                ["warm direct read [ms]", wr["direct_s"] * 1e3],
                ["warm routed read [ms]", wr["routed_s"] * 1e3],
                ["relay overhead", f"{wr['overhead']*100:+.1f}%"],
                [f"{ssc['n_clients']} same-shard clients, 1 conn [ms]",
                 ssc["serialized_s"] * 1e3],
                [f"{ssc['n_clients']} same-shard clients, pooled [ms]",
                 ssc["pooled_s"] * 1e3],
                ["pool speedup", ssc["speedup"]],
                ["cold drain, 1 daemon [MB/s]", ca["single_bps"] / 1e6],
                ["cold drain, 3 shards [MB/s]", ca["sharded_bps"] / 1e6],
                ["aggregate speedup", ca["speedup"]],
            ],
        )
    )
    record_bench("shard", results)
    # The acceptance gate of the shard layer: relaying through the router
    # must stay within 20% of a direct daemon read on warm, daemon-side-
    # dominated requests.  Best-of-N timings plus a small absolute slack
    # keep the bound meaningful without being scheduler-flaky.
    assert wr["routed_s"] <= wr["direct_s"] * 1.20 + 500e-6, (
        f"routed warm read {wr['routed_s']*1e3:.3f} ms vs direct "
        f"{wr['direct_s']*1e3:.3f} ms: relay overhead above 20%"
    )
    # The PR-9 pool gate: with N clients pinned to one shard, the pooled
    # router must never lose to the single-connection shape.  The *scale* of
    # the win varies with cores and payload, so only no-regression is
    # asserted (the deterministic x-fold bound lives in test_serve_pool.py);
    # skip on single-core runners where overlap cannot help.
    if (os.cpu_count() or 1) > 1:
        assert ssc["pooled_s"] <= ssc["serialized_s"] * 1.05 + 1e-3, (
            f"pooled same-shard drain {ssc['pooled_s']*1e3:.3f} ms vs "
            f"serialized {ssc['serialized_s']*1e3:.3f} ms: the connection "
            "pool regressed same-shard concurrency"
        )


@pytest.mark.slow
def test_shard(benchmark, report, tmp_path):
    results = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    _check_and_report(results, report)


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        results = _run(Path(tmp))
    _check_and_report(results, lambda text: print("\n" + text))
    print(f"\nok (quick={QUICK}) -> BENCH_shard.json")
