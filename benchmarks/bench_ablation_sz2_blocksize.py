"""Ablation — SZ2 block size on multi-resolution data (6^3 vs 4^3, §III-B).

AMRIC found that SZ2 must shrink its block size from 6^3 to 4^3 to perform
well on multi-resolution data (at the cost of more blocking artefacts, which
is what motivates the post-processing).  The ablation compares both block
sizes on the Nyx-T1 hierarchy and additionally reports how much the
post-processing recovers for the 4^3 configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, format_table, psnr_at_cr, relative_error_bounds
from repro.analysis import psnr
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth

EB_FRACTIONS = (0.005, 0.01, 0.02, 0.04)


def _run():
    ds = dataset("nyx-t1")
    hierarchy = ds.hierarchy
    reference = hierarchy.to_uniform()
    bounds = relative_error_bounds(ds.field, EB_FRACTIONS)

    curves = {}
    for block in (6, 4):
        mrc = MultiResolutionCompressor(
            compressor="sz2", arrangement="stack", compressor_options={"block_size": block}
        )
        points = []
        for eb in bounds:
            comp, deco = mrc.roundtrip_hierarchy(hierarchy, eb)
            points.append((comp.compression_ratio, psnr(reference, deco.to_uniform())))
        curves[f"SZ2 {block}^3"] = points

    # post-processed 4^3 configuration
    mrc = MultiResolutionCompressor(
        compressor="sz2", arrangement="stack", compressor_options={"block_size": 4}
    )
    pp = PostProcessor("sz2")
    points = []
    for eb in bounds:
        comp = mrc.compress_hierarchy(hierarchy, eb)
        deco = mrc.decompress_hierarchy(comp, hierarchy)
        processed_levels = []
        for orig_level, deco_level in zip(hierarchy.levels, deco.levels):
            plan = pp.plan(orig_level.data, mrc.codec, eb, block_size=4)
            processed_levels.append(
                bezier_boundary_smooth(
                    deco_level.data, block_size=4, error_bound=eb, intensity=plan.intensities
                )
            )
        processed = hierarchy.copy_with_data(processed_levels)
        points.append((comp.compression_ratio, psnr(reference, processed.to_uniform())))
    curves["SZ2 4^3 + post"] = points
    return curves


def test_ablation_sz2_block_size(benchmark, report):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name] + [f"({cr:.0f}, {p:.1f})" for cr, p in points] for name, points in curves.items()
    ]
    report(
        format_table(
            "Ablation — SZ2 block size on multi-resolution Nyx-T1 ((CR, PSNR))",
            ["configuration"] + [f"eb={f:g}R" for f in EB_FRACTIONS],
            rows,
        )
    )
    # post-processing the 4^3 configuration must not hurt it
    for (cr4, p4), (crp, pp_) in zip(curves["SZ2 4^3"], curves["SZ2 4^3 + post"]):
        assert pp_ >= p4 - 1e-9
