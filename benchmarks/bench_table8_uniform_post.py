"""Table VIII — post-processing on uniform-resolution S3D and Nyx-T3 (ZFP & SZ2).

Paper: post-processing consistently improves the PSNR of both compressors on
both uniform datasets, e.g. S3D + ZFP 48.4 -> 51.0 dB at CR 138 and Nyx-T3 +
SZ2 112.5 -> 114.5 dB at CR 214, with gains shrinking at low ratios.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.analysis import psnr
from repro.compressors import SZ2Compressor, ZFPCompressor
from repro.core.postprocess import PostProcessor

EB_FRACTIONS = (0.08, 0.04, 0.02, 0.01, 0.005, 0.002)


def _run_case(dataset_name: str, codec_name: str):
    ds = dataset(dataset_name)
    field = ds.field
    compressor = ZFPCompressor() if codec_name == "zfp" else SZ2Compressor()
    pp = PostProcessor(codec_name)
    rows = []
    for eb in relative_error_bounds(field, EB_FRACTIONS):
        result = compressor.roundtrip(field, eb)
        plan = pp.plan(field, compressor, eb)
        processed = pp.apply(result.decompressed, plan)
        rows.append(
            {
                "cr": result.compression_ratio,
                "raw": psnr(field, result.decompressed),
                "post": psnr(field, processed),
            }
        )
    return rows


def _run():
    return {
        (name, codec): _run_case(name, codec)
        for name in ("s3d", "nyx-t3")
        for codec in ("zfp", "sz2")
    }


def test_table8_uniform_postprocess(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for (name, codec), rows in results.items():
        report(
            format_table(
                f"Table VIII — {name} + {codec.upper()} (uniform): PSNR without/with post-process",
                ["CR", "PSNR-Ori", "PSNR-Post", "gain"],
                [[f"{r['cr']:.0f}", r["raw"], r["post"], r["post"] - r["raw"]] for r in rows],
            )
        )
    for key, rows in results.items():
        gains = [r["post"] - r["raw"] for r in rows]
        assert all(g >= -1e-9 for g in gains), key
        assert max(gains) > 0.0, key
