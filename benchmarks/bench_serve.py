"""Read-daemon latency — cold vs warm shared-cache remote reads.

Not a figure from the paper: this benchmark characterises :mod:`repro.serve`,
the daemon that lets many analysis clients share one decode pool.  One store
(a >=64^3 synthetic field appended at unit 16) is served over a loopback
socket; a client then reads a sliding set of overlapping ROIs twice:

* **cold** — first pass, every touched block must be decoded daemon-side;
* **warm** — identical second pass, answered entirely from the shared
  :class:`~repro.array.BlockCache` (the daemon accounting proves zero new
  decodes);
* **local** — the same pass through the in-process lazy view, as the
  no-socket baseline that prices the wire overhead.

Numbers land in ``BENCH_serve.json`` via :func:`record_bench` (cold/warm
per-read latency, decode counts, payload bytes moved), so a result file is
interpretable without the run log.  The assertions are shape-only: warm
passes decode nothing and do not lose to cold passes; absolute times vary
with the host.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _helpers import format_table, record_bench
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.datasets.synthetic import smooth_wave_field
from repro.serve import ReadDaemon, RemoteStore
from repro.store import Store

EDGE = int(os.environ.get("REPRO_BENCH_SERVE_SIZE", "64"))
UNIT = 16
EB = 1e-3
ROI_EDGE = EDGE // 2
N_ROIS = 8


def _windows():
    """Overlapping ROI selections sliding through the field."""
    max_lo = EDGE - ROI_EDGE
    return [
        (
            slice(lo, lo + ROI_EDGE),
            slice(None),
            slice(None, None, 2),
        )
        for lo in np.linspace(0, max_lo, N_ROIS).astype(int)
    ]


def _timed_pass(view, windows):
    times, results = [], []
    for window in windows:
        start = time.perf_counter()
        results.append(np.asarray(view[window]))
        times.append(time.perf_counter() - start)
    return times, results


def _run(tmp_path):
    field = smooth_wave_field((EDGE, EDGE, EDGE), frequencies=(3.0, 5.0, 2.0))
    store = Store(tmp_path / "store", MultiResolutionCompressor(unit_size=UNIT))
    store.append("f", 0, field, EB)
    windows = _windows()

    with ReadDaemon(store) as daemon:
        with RemoteStore(daemon.address) as client:
            remote = client["f", 0]
            before = daemon.stats()
            cold_times, cold_results = _timed_pass(remote, windows)
            mid = daemon.stats()
            warm_times, warm_results = _timed_pass(remote, windows)
            after = daemon.stats()
        stats_final = daemon.stats()

    # Local baseline on a fresh cache: what the socket costs on a cold read.
    store.block_cache.clear()
    local_times, local_results = _timed_pass(store["f", 0], windows)

    for cold, warm, local in zip(cold_results, warm_results, local_results):
        assert np.array_equal(cold, warm)
        assert np.array_equal(cold, local)

    return {
        "cold_times": cold_times,
        "warm_times": warm_times,
        "local_times": local_times,
        "cold_decodes": mid["blocks_decoded"] - before["blocks_decoded"],
        "warm_decodes": after["blocks_decoded"] - mid["blocks_decoded"],
        "touched": mid["blocks_touched"] - before["blocks_touched"],
        "result_bytes": after["result_bytes_sent"] - before["result_bytes_sent"],
        "cache": stats_final["cache"],
    }


@pytest.mark.slow
def test_serve_latency(benchmark, report, tmp_path):
    results = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    rows = [
        [
            "remote cold",
            float(np.sum(results["cold_times"])),
            float(np.mean(results["cold_times"]) * 1e3),
            results["cold_decodes"],
        ],
        [
            "remote warm",
            float(np.sum(results["warm_times"])),
            float(np.mean(results["warm_times"]) * 1e3),
            results["warm_decodes"],
        ],
        [
            "local cold",
            float(np.sum(results["local_times"])),
            float(np.mean(results["local_times"]) * 1e3),
            results["cold_decodes"],
        ],
    ]
    report(
        format_table(
            f"Read daemon — {N_ROIS} overlapping {ROI_EDGE}-deep ROIs of {EDGE}^3, "
            f"unit {UNIT}",
            ["pass", "total [s]", "per read [ms]", "blocks decoded"],
            rows,
        )
    )
    report(
        f"warm/cold per-read: {np.mean(results['warm_times']) * 1e3:.2f} / "
        f"{np.mean(results['cold_times']) * 1e3:.2f} ms; "
        f"{results['result_bytes'] / 1e6:.1f} MB of results over the wire; "
        f"cache hits {results['cache']['hits']}"
    )
    record_bench(
        "serve",
        {
            "edge": EDGE,
            "unit_size": UNIT,
            "error_bound": EB,
            "n_rois": N_ROIS,
            "roi_edge": ROI_EDGE,
            "cpu_count": os.cpu_count(),
            "cold": {
                "times_s": results["cold_times"],
                "per_read_ms": float(np.mean(results["cold_times"]) * 1e3),
                "blocks_decoded": results["cold_decodes"],
            },
            "warm": {
                "times_s": results["warm_times"],
                "per_read_ms": float(np.mean(results["warm_times"]) * 1e3),
                "blocks_decoded": results["warm_decodes"],
            },
            "local": {
                "times_s": results["local_times"],
                "per_read_ms": float(np.mean(results["local_times"]) * 1e3),
            },
            "blocks_touched": results["touched"],
            "result_bytes_sent": results["result_bytes"],
            "cache": results["cache"],
        },
    )
    # Shape assertions only: the warm pass is answered without any decode and
    # is not slower than paying the decodes again (timings otherwise vary too
    # much across hosts for absolute bounds).
    assert results["cold_decodes"] > 0
    assert results["warm_decodes"] == 0
    assert np.sum(results["warm_times"]) <= np.sum(results["cold_times"]) * 1.5
