"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper: it runs
the experiment on the scaled-down synthetic datasets, prints the same rows /
series the paper reports next to the paper's own numbers, and asserts only
the *shape* of the result (who wins, what improves) — absolute values differ
because the substrate is a NumPy reimplementation on laptop-sized grids.

:func:`record_bench` persists a benchmark's numbers as ``BENCH_<name>.json``
with the resolved :class:`repro.api.WorkflowConfig` of every measured
variant written alongside (``BENCH_<name>.config.json``), recording codec,
bound and input provenance so each variant is re-runnable via ``repro run``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis import psnr, ssim
from repro.api import CodecSpec, ErrorBound, WorkflowConfig
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.datasets import get_dataset

__all__ = [
    "dataset",
    "relative_error_bounds",
    "sweep_hierarchy",
    "sweep_uniform",
    "psnr_at_cr",
    "find_error_bound_for_cr",
    "format_table",
    "RDPoint",
    "resolved_workflow_config",
    "record_bench",
]

#: Grid size used by the benchmarks ("small" = 64-class grids, seconds per sweep).
BENCH_SIZE = "small"

#: Where BENCH_*.json result + config dumps land (kept out of version control).
RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS", Path(__file__).parent / "results"))


@lru_cache(maxsize=None)
def dataset(name: str, size: str = BENCH_SIZE):
    """Cached dataset access so independent benchmarks do not regenerate fields."""
    return get_dataset(name, size=size)


def relative_error_bounds(field: np.ndarray, fractions: Sequence[float]) -> List[float]:
    """Convert value-range-relative bounds to absolute ones for ``field``."""
    value_range = float(np.max(field) - np.min(field))
    return [float(f) * value_range for f in fractions]


@dataclass
class RDPoint:
    """One rate-distortion sample."""

    error_bound: float
    compression_ratio: float
    psnr: float
    ssim: float = float("nan")


def sweep_hierarchy(
    compressor: MultiResolutionCompressor,
    hierarchy,
    reference: np.ndarray,
    error_bounds: Sequence[float],
    with_ssim: bool = False,
) -> List[RDPoint]:
    """Rate-distortion sweep of a multi-resolution compressor over a hierarchy."""
    points = []
    for eb in error_bounds:
        comp, deco = compressor.roundtrip_hierarchy(hierarchy, float(eb))
        field = deco.to_uniform()
        points.append(
            RDPoint(
                error_bound=float(eb),
                compression_ratio=comp.compression_ratio,
                psnr=psnr(reference, field),
                ssim=ssim(reference, field) if with_ssim else float("nan"),
            )
        )
    return points


def sweep_uniform(
    roundtrip: Callable[[np.ndarray, float], Tuple[float, np.ndarray]],
    data: np.ndarray,
    error_bounds: Sequence[float],
    with_ssim: bool = False,
) -> List[RDPoint]:
    """Rate-distortion sweep for a plain-array compressor.

    ``roundtrip(data, eb)`` must return ``(compression_ratio, reconstruction)``.
    """
    points = []
    for eb in error_bounds:
        ratio, recon = roundtrip(data, float(eb))
        points.append(
            RDPoint(
                error_bound=float(eb),
                compression_ratio=float(ratio),
                psnr=psnr(data, recon),
                ssim=ssim(data, recon) if with_ssim else float("nan"),
            )
        )
    return points


def psnr_at_cr(points: Sequence[RDPoint], target_cr: float) -> float:
    """PSNR of a rate-distortion curve at a given compression ratio (log-interp)."""
    crs = np.array([p.compression_ratio for p in points])
    psnrs = np.array([p.psnr for p in points])
    order = np.argsort(crs)
    return float(np.interp(np.log(target_cr), np.log(crs[order]), psnrs[order]))


def find_error_bound_for_cr(
    roundtrip: Callable[[float], float],
    target_cr: float,
    lo: float,
    hi: float,
    iterations: int = 12,
) -> float:
    """Bisection search for the error bound that reaches a target compression ratio.

    ``roundtrip(eb)`` returns the achieved compression ratio (monotone in eb).
    """
    for _ in range(iterations):
        mid = float(np.sqrt(lo * hi))
        achieved = roundtrip(mid)
        if achieved < target_cr:
            lo = mid
        else:
            hi = mid
    return float(np.sqrt(lo * hi))


def resolved_workflow_config(
    compressor: MultiResolutionCompressor,
    error_bound: Union[float, ErrorBound],
    **workflow_fields,
) -> WorkflowConfig:
    """Capture a live compressor + bound as a replayable :class:`WorkflowConfig`."""
    return WorkflowConfig(
        codec=CodecSpec.from_compressor(compressor),
        error_bound=ErrorBound.coerce(error_bound),
        **workflow_fields,
    )


def record_bench(
    name: str,
    payload,
    configs: Optional[Mapping[str, WorkflowConfig]] = None,
) -> Path:
    """Dump a benchmark's numbers (and the configs that produced them) to disk.

    Writes ``BENCH_<name>.json`` under :data:`RESULTS_DIR`; when ``configs``
    maps variant labels to :class:`WorkflowConfig`, the resolved config JSON
    lands next to it as ``BENCH_<name>.config.json``.  Each dumped config
    records one representative bound (sweeps store the per-point absolute
    bounds in the result file itself) plus the codec and input, so a variant
    re-runs via ``repro run`` after extracting it from the mapping.  Returns
    the result-file path.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    result_path = RESULTS_DIR / f"BENCH_{name}.json"
    result_path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str), "utf-8")
    if configs:
        config_path = RESULTS_DIR / f"BENCH_{name}.config.json"
        config_path.write_text(
            json.dumps(
                {label: cfg.to_dict() for label, cfg in configs.items()},
                indent=2,
                sort_keys=True,
            ),
            "utf-8",
        )
    return result_path


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width table (printed by every benchmark for EXPERIMENTS.md)."""
    str_rows = [[f"{v:.3g}" if isinstance(v, float) else str(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
