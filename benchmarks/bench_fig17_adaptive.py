"""Figure 17 — rate-distortion on adaptive data: WarpX (in-situ) and Hurricane (offline).

Paper: on adaptive data derived from uniform grids the SZ3MR padding curve
beats the original-SZ3 baseline across all ratios on Hurricane and in most
cases on WarpX (except the lowest ratios); the adaptive error bound adds a
further gain mainly at high compression ratios.  AMRIC / TAC are absent
because they have no adaptive-data support.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import (
    dataset,
    format_table,
    psnr_at_cr,
    record_bench,
    relative_error_bounds,
    resolved_workflow_config,
    sweep_hierarchy,
)
from repro.api import ErrorBound
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.sz3mr import SZ3MRCompressor

EB_FRACTIONS = (0.002, 0.005, 0.01, 0.02, 0.04, 0.08)

VARIANTS = {
    "Baseline-SZ3": lambda: MultiResolutionCompressor(
        compressor="sz3", arrangement="linear", padding=False, adaptive_eb=False
    ),
    "Ours (pad)": lambda: MultiResolutionCompressor(
        compressor="sz3", arrangement="linear", padding="auto", adaptive_eb=False
    ),
    "Ours (pad+eb)": lambda: SZ3MRCompressor(),
}


def _run(dataset_name: str):
    ds = dataset(dataset_name)
    hierarchy = ds.hierarchy
    reference = hierarchy.to_uniform()
    bounds = relative_error_bounds(ds.field, EB_FRACTIONS)
    return {
        name: sweep_hierarchy(factory(), hierarchy, reference, bounds)
        for name, factory in VARIANTS.items()
    }


@pytest.mark.parametrize("dataset_name", ["warpx", "hurricane"])
def test_fig17_adaptive_rate_distortion(benchmark, report, dataset_name):
    curves = benchmark.pedantic(_run, args=(dataset_name,), rounds=1, iterations=1)

    rows = [
        [name] + [f"({p.compression_ratio:.0f}, {p.psnr:.1f})" for p in points]
        for name, points in curves.items()
    ]
    report(
        format_table(
            f"Fig. 17 — {dataset_name} adaptive data, (CR, PSNR) per error bound",
            ["variant"] + [f"eb={f:g}R" for f in EB_FRACTIONS],
            rows,
        )
    )
    record_bench(
        f"fig17_{dataset_name}",
        {
            name: [
                {"error_bound": p.error_bound, "cr": p.compression_ratio, "psnr": p.psnr}
                for p in points
            ]
            for name, points in curves.items()
        },
        configs={
            name: resolved_workflow_config(
                factory(),
                ErrorBound.rel(EB_FRACTIONS[len(EB_FRACTIONS) // 2]),
                input={"kind": "dataset", "name": dataset_name},
            )
            for name, factory in VARIANTS.items()
        },
    )

    # Shape check: at a matched high compression ratio (where the paper's gains
    # concentrate) the full SZ3MR curve must not be worse than the baseline.
    target_cr = np.percentile([p.compression_ratio for p in curves["Baseline-SZ3"]], 75)
    assert psnr_at_cr(curves["Ours (pad+eb)"], target_cr) >= psnr_at_cr(
        curves["Baseline-SZ3"], target_cr
    ) - 0.5
