"""Figure 14 — uncertainty visualization recovers compression-pruned isosurfaces.

Paper: on the Hurricane dataset compressed with ZFP at CR ~ 240, isosurface
pieces disappear or crack in the decompressed rendering (cyan/green boxes);
the probabilistic-marching-cubes uncertainty overlay (red) recovers their
potential presence.  The reproduction compresses the synthetic hurricane
field aggressively, models the sampled compression error as a normal
distribution conditioned near the isovalue, and reports how many of the
pruned isosurface cells receive a non-trivial crossing probability.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, find_error_bound_for_cr, format_table
from repro.compressors import ZFPCompressor
from repro.core.uncertainty import CompressionUncertaintyModel
from repro.vis import isosurface_cell_count


def _run():
    ds = dataset("hurricane")
    field = ds.field
    value_range = float(field.max() - field.min())
    compressor = ZFPCompressor()

    def ratio_for(eb):
        return compressor.compress(field, eb).compression_ratio

    # Drive ZFP to an aggressive ratio (the paper uses CR = 240 at 500^2x100;
    # at laptop scale we target a high ratio for this grid).
    eb = find_error_bound_for_cr(ratio_for, 60.0, 1e-3 * value_range, 0.5 * value_range)
    result = compressor.roundtrip(field, eb)
    model = CompressionUncertaintyModel.from_sampling(field, compressor, eb)

    isovalue = float(np.percentile(field, 90))
    recovery = model.feature_recovery(field, result.decompressed, isovalue,
                                      probability_threshold=0.05)
    return {
        "cr": result.compression_ratio,
        "isovalue": isovalue,
        "original_cells": recovery.original_cells,
        "decompressed_cells": recovery.decompressed_cells,
        "missing_cells": recovery.missing_cells,
        "recovered_cells": recovery.recovered_cells,
        "recovery_rate": recovery.recovery_rate,
        "spurious_cells": recovery.spurious_cells,
        "sigma": model.isovalue_conditioned_std(isovalue),
    }


def test_fig14_uncertainty_recovers_lost_isosurface(benchmark, report):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        format_table(
            "Fig. 14 — Hurricane + ZFP: isosurface cells lost to compression and recovered by uncertainty",
            ["CR", "orig cells", "decomp cells", "missing", "recovered", "recovery rate", "sigma"],
            [[
                r["cr"], r["original_cells"], r["decompressed_cells"], r["missing_cells"],
                r["recovered_cells"], r["recovery_rate"], r["sigma"],
            ]],
        )
    )
    # compression at this ratio must actually prune isosurface cells ...
    assert r["missing_cells"] > 0
    # ... and the probabilistic overlay must recover a substantial fraction of them
    assert r["recovery_rate"] > 0.5
