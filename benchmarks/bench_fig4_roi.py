"""Figure 4 — ROI extraction quality on the Nyx cosmology dataset.

Paper: selecting only 15 % of the dataset with range-based ROI extraction
keeps an SSIM of 0.99995 against the original visualization and captures
almost all halos relevant for the Halo-finder analysis.

Reproduced as: extract a 15 % ROI from the synthetic Nyx density field,
rebuild the full-resolution field, and report (a) SSIM against the original
and (b) the fraction of halos (threshold + connected components) recovered.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table
from repro.analysis import find_halos, match_halos, ssim
from repro.core.roi import extract_roi, roi_preview_field


def _run():
    ds = dataset("nyx-t3")  # uniform Nyx field
    field = ds.field
    rows = []
    for fraction in (0.15, 0.30, 0.50):
        roi = extract_roi(field, roi_fraction=fraction, block_size=8)
        preview = roi_preview_field(roi, order="linear")
        # Track the massive halos (the Halo-finder analysis target); at 64^3 a
        # halo occupies a much larger *fraction* of the domain than at the
        # paper's 512^3, so a given ROI percentage covers fewer of them.
        halos_orig = find_halos(field, overdensity=10.0, min_cells=16)
        halos_roi = find_halos(preview, overdensity=10.0, min_cells=16)
        rows.append(
            {
                "fraction": fraction,
                "ssim": ssim(field, preview),
                "halo_recovery": match_halos(halos_orig, halos_roi),
                "storage_reduction": roi.storage_reduction,
            }
        )
    return rows


def test_fig4_roi_extraction_quality(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        format_table(
            "Fig. 4 — ROI extraction on Nyx (paper: 15% ROI, SSIM 0.99995, halos captured)",
            ["ROI fraction", "SSIM vs original", "halo recovery", "storage reduction"],
            [[r["fraction"], r["ssim"], r["halo_recovery"], r["storage_reduction"]] for r in rows],
        )
    )
    fifteen = rows[0]
    # The paper reports SSIM 0.99995 and near-total halo capture with a 15%
    # ROI on the real 512^3 Nyx field, where halos are tiny relative to the
    # domain.  On the 64^3 synthetic stand-in each halo covers a much larger
    # volume fraction, so the same ROI percentage captures fewer of them; the
    # reproduced shape is: high SSIM at 15%, a majority of massive halos
    # recovered, and both metrics rising monotonically to ~1 by a 50% ROI.
    assert fifteen["ssim"] > 0.90
    assert fifteen["halo_recovery"] > 0.5
    assert rows[-1]["ssim"] >= rows[0]["ssim"] - 1e-6
    assert rows[-1]["ssim"] > 0.97
    assert rows[-1]["halo_recovery"] > 0.9
