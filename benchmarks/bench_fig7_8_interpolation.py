"""Figures 7 and 8 — interpolation extrapolation counts and the effect of padding.

The method figures illustrate why ``2^n``-sized unit blocks force SZ3 into
extrapolation (Fig. 7) and how one padded layer removes every sub-optimal
prediction (Fig. 8).  The benchmark counts extrapolated points for the actual
merged-array shapes used by the workflow and measures the prediction-accuracy
gain of padding on a smooth merged array.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import format_table
from repro.compressors.interpolation import build_plan, count_extrapolated_points, predict_step
from repro.core.padding import pad_small_dimensions, padding_overhead


def _prediction_error(shape, pad: bool):
    """Mean interpolation prediction error over the original (unpadded) points.

    The padded layer's own prediction error is excluded: those samples are
    cropped away after decompression, so only the predictions of real data
    points matter (this is exactly what Figs. 7/8 illustrate).
    """
    coords = np.meshgrid(*[np.linspace(0, 1, s) for s in shape], indexing="ij")
    field = np.sin(3 * coords[0] + 1) * np.cos(2 * coords[1]) * np.sin(4 * coords[2])
    original = np.ones(shape, dtype=bool)
    if pad:
        field, _ = pad_small_dimensions(field, mode="linear")
        original = np.zeros(field.shape, dtype=bool)
        original[tuple(slice(0, s) for s in shape)] = True
    plan = build_plan(field.shape)
    total_err = 0.0
    total_pts = 0
    for step in plan.steps:
        pred = predict_step(field, step, mode="cubic")
        keep = original[step.target]
        if keep.any():
            total_err += float(np.abs(pred - field[step.target])[keep].sum())
            total_pts += int(keep.sum())
    return total_err / max(1, total_pts)


def _run():
    rows = []
    for unit, n_blocks in ((8, 64), (16, 16)):
        unpadded_shape = (unit, unit, unit * n_blocks)
        padded_shape = (unit + 1, unit + 1, unit * n_blocks)
        rows.append(
            {
                "unit": unit,
                "extrap_unpadded": count_extrapolated_points(unpadded_shape),
                "extrap_padded": count_extrapolated_points(padded_shape),
                "overhead": padding_overhead(unit),
                "pred_err_unpadded": _prediction_error(unpadded_shape, pad=False),
                "pred_err_padded": _prediction_error(unpadded_shape, pad=True),
            }
        )
    return rows


def test_fig7_8_padding_removes_extrapolation(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        format_table(
            "Figs. 7/8 — extrapolated points and prediction error, with vs without padding",
            [
                "unit block",
                "extrapolated (no pad)",
                "extrapolated (pad)",
                "pad overhead",
                "pred err (no pad)",
                "pred err (pad)",
            ],
            [
                [
                    r["unit"],
                    r["extrap_unpadded"],
                    r["extrap_padded"],
                    f"{100 * r['overhead']:.0f}%",
                    r["pred_err_unpadded"],
                    r["pred_err_padded"],
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        # padding the two small dimensions removes their extrapolated points...
        assert r["extrap_padded"] < r["extrap_unpadded"]
        # ...and improves average prediction accuracy on smooth data
        assert r["pred_err_padded"] <= r["pred_err_unpadded"] * 1.05
    # the paper's overhead numbers: 56% for u=4, ~13% for u=16
    assert padding_overhead(4) == pytest.approx(0.5625)
    assert padding_overhead(16) == pytest.approx(0.129, abs=0.01)
