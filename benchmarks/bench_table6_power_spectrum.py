"""Table VI — power-spectrum error of SZ3 variants on Nyx-T2 at the same CR.

Paper: at the same compression ratio SZ3MR reduces the maximum power-spectrum
relative error (k < 10) by ~73-76 % and the average error by ~60-74 % versus
Baseline-SZ3, AMRIC-SZ3 and TAC-SZ3 (max errors 2.7e-2 / 2.8e-2 / 2.5e-2 vs
6.7e-3; averages 8.8e-3 / 5.7e-3 / 6.0e-3 vs 2.3e-3).
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, find_error_bound_for_cr, format_table
from repro.analysis import power_spectrum_error
from repro.core.sz3mr import sz3mr_variants

TARGET_CR = 40.0

PAPER = {
    "Baseline-SZ3": (8.8e-3, 2.7e-2),
    "AMRIC-SZ3": (5.7e-3, 2.8e-2),
    "TAC-SZ3": (6.0e-3, 2.5e-2),
    "Ours (pad+eb)": (2.3e-3, 6.7e-3),
}


def _run():
    ds = dataset("nyx-t2")
    hierarchy = ds.hierarchy
    reference = hierarchy.to_uniform()
    value_range = float(reference.max() - reference.min())
    results = {}
    variants = sz3mr_variants(include_tac=True)
    for name in ("Baseline-SZ3", "AMRIC-SZ3", "TAC-SZ3", "Ours (pad+eb)"):
        mrc = variants[name]

        def ratio_for(eb, mrc=mrc):
            return mrc.compress_hierarchy(hierarchy, eb).compression_ratio

        eb = find_error_bound_for_cr(ratio_for, TARGET_CR, 1e-4 * value_range, 0.5 * value_range)
        comp, deco = mrc.roundtrip_hierarchy(hierarchy, eb)
        err = power_spectrum_error(reference, deco.to_uniform(), k_max=10.0)
        results[name] = {
            "cr": comp.compression_ratio,
            "avg": err.mean_relative_error,
            "max": err.max_relative_error,
        }
    return results


def test_table6_power_spectrum_error(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name, r["cr"], PAPER[name][0], r["avg"], PAPER[name][1], r["max"]]
        for name, r in results.items()
    ]
    report(
        format_table(
            f"Table VI — Nyx-T2 power-spectrum relative error for k<10 at CR~{TARGET_CR:.0f}",
            ["variant", "CR", "paper avg", "measured avg", "paper max", "measured max"],
            rows,
        )
    )
    ours = results["Ours (pad+eb)"]
    for rival in ("Baseline-SZ3", "AMRIC-SZ3", "TAC-SZ3"):
        # the paper's headline: SZ3MR has the smallest spectral distortion at matched CR
        assert ours["max"] <= results[rival]["max"] * 1.15, rival
        assert ours["avg"] <= results[rival]["avg"] * 1.15, rival
