"""Figure 18 — offline AMR rate-distortion: Nyx-T2 and Rayleigh-Taylor.

Paper: after the two-step optimization SZ3MR outperforms Baseline-SZ3,
AMRIC-SZ3 and TAC-SZ3 on both offline AMR datasets; AMRIC underperforms even
the baseline on RT (the extra refinement level makes the stacked data less
smooth), and TAC's advantage at low ratios vanishes on RT because per-segment
encoding overhead grows on small levels.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import (
    dataset,
    format_table,
    psnr_at_cr,
    record_bench,
    relative_error_bounds,
    resolved_workflow_config,
    sweep_hierarchy,
)
from repro.api import ErrorBound
from repro.core.sz3mr import sz3mr_variants

EB_FRACTIONS = (0.001, 0.002, 0.005, 0.01, 0.02, 0.04)


def _run(dataset_name: str):
    ds = dataset(dataset_name)
    hierarchy = ds.hierarchy
    reference = hierarchy.to_uniform()
    bounds = relative_error_bounds(ds.field, EB_FRACTIONS)
    return {
        name: sweep_hierarchy(mrc, hierarchy, reference, bounds)
        for name, mrc in sz3mr_variants(include_tac=True).items()
    }


@pytest.mark.parametrize("dataset_name", ["nyx-t2", "rt"])
def test_fig18_offline_amr_rate_distortion(benchmark, report, dataset_name):
    curves = benchmark.pedantic(_run, args=(dataset_name,), rounds=1, iterations=1)

    rows = [
        [name] + [f"({p.compression_ratio:.0f}, {p.psnr:.1f})" for p in points]
        for name, points in curves.items()
    ]
    report(
        format_table(
            f"Fig. 18 — {dataset_name} offline AMR data, (CR, PSNR) per error bound",
            ["variant"] + [f"eb={f:g}R" for f in EB_FRACTIONS],
            rows,
        )
    )
    record_bench(
        f"fig18_{dataset_name}",
        {
            name: [
                {"error_bound": p.error_bound, "cr": p.compression_ratio, "psnr": p.psnr}
                for p in points
            ]
            for name, points in curves.items()
        },
        configs={
            name: resolved_workflow_config(
                mrc,
                ErrorBound.rel(EB_FRACTIONS[len(EB_FRACTIONS) // 2]),
                input={"kind": "dataset", "name": dataset_name},
            )
            for name, mrc in sz3mr_variants(include_tac=True).items()
        },
    )

    # Compare at a matched ratio inside the range the paper evaluates (CR up to
    # ~200); the synthetic fields are more compressible, so the sweep is capped.
    target_cr = min(
        float(np.percentile([p.compression_ratio for p in curves["Baseline-SZ3"]], 75)), 150.0
    )
    ours = psnr_at_cr(curves["Ours (pad+eb)"], target_cr)
    for rival in ("Baseline-SZ3", "AMRIC-SZ3", "TAC-SZ3"):
        assert ours >= psnr_at_cr(curves[rival], target_cr) - 0.5, rival
