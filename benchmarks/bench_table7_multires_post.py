"""Table VII — post-processing on multi-resolution RT and Hurricane data (ZFP & SZ2).

Paper: the post-process improves PSNR at every compression ratio for both
datasets and both block-wise compressors, e.g. RT + ZFP 34.2 -> 36.7 dB at
CR 184 and Hurricane + SZ2 41.9 -> 43.2 dB at CR 170, with smaller gains at
low ratios.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.analysis import psnr
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth

EB_FRACTIONS = (0.08, 0.04, 0.02, 0.01, 0.005)


def _run_case(dataset_name: str, codec: str):
    ds = dataset(dataset_name)
    hierarchy = ds.hierarchy
    mrc = MultiResolutionCompressor(compressor=codec, arrangement="stack")
    pp = PostProcessor(codec)
    block_size = int(getattr(mrc.codec, "block_size", 4))
    bounds = relative_error_bounds(ds.field, EB_FRACTIONS)
    rows = []
    for eb in bounds:
        compressed = mrc.compress_hierarchy(hierarchy, eb)
        deco = mrc.decompress_hierarchy(compressed, hierarchy)
        processed_levels = []
        for orig_level, deco_level in zip(hierarchy.levels, deco.levels):
            plan = pp.plan(orig_level.data, mrc.codec, eb, block_size=block_size)
            processed_levels.append(
                bezier_boundary_smooth(
                    deco_level.data, block_size=block_size, error_bound=eb,
                    intensity=plan.intensities,
                )
            )
        processed = hierarchy.copy_with_data(processed_levels)
        reference = hierarchy.to_uniform()
        rows.append(
            {
                "cr": compressed.compression_ratio,
                "raw": psnr(reference, deco.to_uniform()),
                "post": psnr(reference, processed.to_uniform()),
            }
        )
    return rows


def _run():
    return {
        (name, codec): _run_case(name, codec)
        for name in ("rt", "hurricane")
        for codec in ("zfp", "sz2")
    }


def test_table7_multiresolution_postprocess(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for (name, codec), rows in results.items():
        report(
            format_table(
                f"Table VII — {name} + {codec.upper()} (multi-resolution): PSNR without/with post-process",
                ["CR", "PSNR-Ori", "PSNR-Post", "gain"],
                [[f"{r['cr']:.0f}", r["raw"], r["post"], r["post"] - r["raw"]] for r in rows],
            )
        )
    for key, rows in results.items():
        gains = [r["post"] - r["raw"] for r in rows]
        # The post-process must help overall; on individual coarse levels of the
        # laptop-scale hierarchies the sampled intensity occasionally costs a
        # few hundredths of a dB, which the full-scale experiments do not show.
        assert all(g >= -0.15 for g in gains), key
        assert max(gains) > 0.0, key
