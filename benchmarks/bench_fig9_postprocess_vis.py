"""Figure 9 — post-processing visual comparison (WarpX + ZFP, Nyx + SZ2).

Paper: at CR = 139 on WarpX "Ez", ZFP scores SSIM 0.72 / PSNR 75.5 and the
post-processed output 0.79 / 78.1; at CR = 143 on Nyx "density", SZ2 scores
0.76 / 116.0 and the post-processed output 0.85 / 118.1.  The reproduction
drives each compressor to a high compression ratio on the corresponding
synthetic dataset and verifies the post-processing improves both SSIM and
PSNR of the reconstruction.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, find_error_bound_for_cr, format_table
from repro.analysis import psnr, ssim
from repro.compressors import SZ2Compressor, ZFPCompressor
from repro.core.postprocess import PostProcessor


def _run_case(dataset_name, compressor, kind, target_cr):
    ds = dataset(dataset_name)
    field = ds.field
    value_range = float(field.max() - field.min())

    def ratio_for(eb):
        return compressor.compress(field, eb).compression_ratio

    eb = find_error_bound_for_cr(ratio_for, target_cr, 1e-4 * value_range, 0.3 * value_range)
    result = compressor.roundtrip(field, eb)
    pp = PostProcessor(kind)
    plan = pp.plan(field, compressor, eb)
    processed = pp.apply(result.decompressed, plan)
    return {
        "cr": result.compression_ratio,
        "psnr_raw": psnr(field, result.decompressed),
        "psnr_post": psnr(field, processed),
        "ssim_raw": ssim(field, result.decompressed),
        "ssim_post": ssim(field, processed),
        "intensities": plan.intensities,
    }


def _run():
    return {
        "WarpX + ZFP": _run_case("warpx", ZFPCompressor(), "zfp", target_cr=60.0),
        "Nyx + SZ2": _run_case("nyx-t3", SZ2Compressor(block_size=4), "sz2", target_cr=60.0),
    }


def test_fig9_postprocess_visual_comparison(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        rows.append([name, r["cr"], r["ssim_raw"], r["ssim_post"], r["psnr_raw"], r["psnr_post"]])
    report(
        format_table(
            "Fig. 9 — post-processing at high CR (paper: ZFP .72->.79 / 75.5->78.1, SZ2 .76->.85 / 116.0->118.1)",
            ["case", "CR", "SSIM raw", "SSIM post", "PSNR raw", "PSNR post"],
            rows,
        )
    )
    for name, r in results.items():
        assert r["psnr_post"] >= r["psnr_raw"], name
        # the intensity search optimises L2 error, so SSIM may move by a hair
        assert r["ssim_post"] >= r["ssim_raw"] - 0.01, name
