"""Table I — image filters vs error-bounded post-processing on ZFP output.

Paper (WarpX + ZFP): decompressed data 80.5 dB; median filter 67.2 dB;
Gaussian blur 71.6 dB; anisotropic diffusion 74.4 dB; ours 82.9 dB.  The key
shape: every classic image filter *reduces* PSNR because it ignores the
error-bounded nature of the data, while the paper's clamped Bezier processing
improves it.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.analysis import psnr
from repro.compressors import ZFPCompressor
from repro.core.postprocess import PostProcessor
from repro.filters import anisotropic_diffusion, gaussian_blur, median_smooth

PAPER_ROW = {"decompressed": 80.5, "median": 67.2, "gaussian": 71.6, "anisotropic": 74.4, "ours": 82.9}


def _run():
    ds = dataset("warpx")
    field = ds.field
    compressor = ZFPCompressor()
    (eb,) = relative_error_bounds(field, (0.02,))
    result = compressor.roundtrip(field, eb)
    deco = result.decompressed

    pp = PostProcessor("zfp")
    plan = pp.plan(field, compressor, eb)
    processed = pp.apply(deco, plan)

    return {
        "cr": result.compression_ratio,
        "decompressed": psnr(field, deco),
        "median": psnr(field, median_smooth(deco, 3)),
        "gaussian": psnr(field, gaussian_blur(deco, 1.0)),
        "anisotropic": psnr(field, anisotropic_diffusion(deco, n_iterations=5)),
        "ours": psnr(field, processed),
    }


def test_table1_filters_vs_error_bounded_postprocess(benchmark, report):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        format_table(
            f"Table I — PSNR of ZFP output and post-processing variants (CR={r['cr']:.0f})",
            ["variant", "paper PSNR", "measured PSNR"],
            [
                ["Decompressed", PAPER_ROW["decompressed"], r["decompressed"]],
                ["Median filter", PAPER_ROW["median"], r["median"]],
                ["Gaussian blur", PAPER_ROW["gaussian"], r["gaussian"]],
                ["Anisotropic diffusion", PAPER_ROW["anisotropic"], r["anisotropic"]],
                ["Ours", PAPER_ROW["ours"], r["ours"]],
            ],
        )
    )
    # Shape: all three filters hurt, ours helps.
    assert r["median"] < r["decompressed"]
    assert r["gaussian"] < r["decompressed"]
    assert r["anisotropic"] < r["decompressed"]
    assert r["ours"] >= r["decompressed"]
