"""Table II — rate-distortion of SZ2 with and without post-processing on WarpX.

Paper: across CR 273 down to 34 the post-processed PSNR exceeds the raw SZ2
PSNR by ~0.5-2 dB, with the gain shrinking as the ratio decreases.  The
reproduction sweeps error bounds on the synthetic WarpX field with SZ2 and
reports both PSNR rows.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.analysis import psnr
from repro.compressors import SZ2Compressor
from repro.core.postprocess import PostProcessor

EB_FRACTIONS = (0.08, 0.04, 0.02, 0.01, 0.005, 0.002, 0.001)

PAPER = {
    "cr": (273, 207, 153, 126, 104, 62, 34),
    "sz2": (67.8, 72.8, 79.6, 84.8, 90.0, 101.9, 114.4),
    "post": (69.8, 74.6, 81.1, 86.2, 91.2, 102.6, 114.9),
}


def _run():
    ds = dataset("warpx")
    field = ds.field
    compressor = SZ2Compressor()  # uniform data: default 6^3 blocks
    pp = PostProcessor("sz2")
    rows = []
    for eb in relative_error_bounds(field, EB_FRACTIONS):
        result = compressor.roundtrip(field, eb)
        plan = pp.plan(field, compressor, eb)
        processed = pp.apply(result.decompressed, plan)
        rows.append(
            {
                "cr": result.compression_ratio,
                "sz2": psnr(field, result.decompressed),
                "post": psnr(field, processed),
            }
        )
    return rows


def test_table2_warpx_sz2_postprocess(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_rows = [
        [f"{r['cr']:.0f}", r["sz2"], r["post"], r["post"] - r["sz2"]] for r in rows
    ]
    report(
        format_table(
            "Table II — WarpX + SZ2: PSNR without/with post-processing "
            f"(paper gains ranged +0.5 to +2.0 dB over CR {PAPER['cr'][-1]}-{PAPER['cr'][0]})",
            ["CR", "PSNR-SZ2", "PSNR-Proc'ed", "gain"],
            table_rows,
        )
    )
    # Shape: the post-processed row never loses, and the largest gains appear
    # at the higher compression ratios.
    gains = [r["post"] - r["sz2"] for r in rows]
    assert all(g >= -1e-9 for g in gains)
    assert max(gains[:3]) >= max(gains[-2:]) - 0.25
