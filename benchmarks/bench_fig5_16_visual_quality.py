"""Figures 5 and 16 — visual quality (SSIM / PSNR) at a fixed compression ratio.

Paper (Fig. 5): on the fine level of Nyx "baryon density" at CR = 163, the
decompressed slices score SSIM 0.64 / PSNR 117.6 for TAC, 0.57 / 115.0 for
AMRIC, and 0.91 / 123.4 for SZ3MR — i.e. at the *same ratio* the paper's
method has the best visual quality.  Paper (Fig. 16): on WarpX "Ez" at
CR = 147, original SZ3 scores SSIM 0.662 / PSNR 75.5 and SZ3MR 0.904 / 86.9.

Here the compressors are driven to (approximately) the same compression ratio
by a bisection on the error bound, and SSIM/PSNR of a central 2-D slice are
compared: SZ3MR must rank first.
"""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import dataset, find_error_bound_for_cr, format_table, relative_error_bounds
from repro.amr.grid import AMRHierarchy, AMRLevel
from repro.analysis import psnr, ssim
from repro.core.sz3mr import sz3mr_variants
from repro.vis import extract_slice


def _match_ratio_quality(hierarchy, reference, variants, target_cr):
    """Drive every variant to ~target_cr and report slice SSIM / volume PSNR."""
    results = {}
    value_range = float(reference.max() - reference.min())
    for name, mrc in variants.items():
        def ratio_for(eb, mrc=mrc):
            return mrc.compress_hierarchy(hierarchy, eb).compression_ratio

        eb = find_error_bound_for_cr(ratio_for, target_cr, 1e-4 * value_range, 0.5 * value_range)
        comp, deco = mrc.roundtrip_hierarchy(hierarchy, eb)
        field = deco.to_uniform()
        slice_orig = extract_slice(reference, axis=2, position=0.5)
        slice_deco = extract_slice(field, axis=2, position=0.5)
        results[name] = {
            "cr": comp.compression_ratio,
            "psnr": psnr(reference, field),
            "ssim": ssim(slice_orig, slice_deco),
        }
    return results


def _run_fig5():
    ds = dataset("nyx-t1")
    fine = ds.hierarchy.levels[0]
    hierarchy = AMRHierarchy([AMRLevel(level=0, data=fine.data.copy(), mask=fine.mask.copy())])
    reference = hierarchy.to_uniform()
    variants = sz3mr_variants(include_tac=True)
    wanted = {k: variants[k] for k in ("TAC-SZ3", "AMRIC-SZ3", "Ours (pad+eb)")}
    return _match_ratio_quality(hierarchy, reference, wanted, target_cr=60.0)


def _run_fig16():
    ds = dataset("warpx")
    hierarchy = ds.hierarchy
    reference = hierarchy.to_uniform()
    variants = sz3mr_variants(include_tac=False)
    wanted = {k: variants[k] for k in ("Baseline-SZ3", "Ours (pad+eb)")}
    return _match_ratio_quality(hierarchy, reference, wanted, target_cr=80.0)


def test_fig5_nyx_fine_level_visual_quality(benchmark, report):
    results = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)
    rows = [
        [name, r["cr"], r["ssim"], r["psnr"]]
        for name, r in results.items()
    ]
    report(
        format_table(
            "Fig. 5 — Nyx fine level at matched CR (paper: TAC .64/117.6, AMRIC .57/115.0, Ours .91/123.4)",
            ["variant", "CR", "slice SSIM", "PSNR"],
            rows,
        )
    )
    ours = results["Ours (pad+eb)"]
    for rival in ("TAC-SZ3", "AMRIC-SZ3"):
        assert ours["psnr"] >= results[rival]["psnr"] - 0.3
        assert ours["ssim"] >= results[rival]["ssim"] - 0.02


def test_fig16_warpx_visual_quality(benchmark, report):
    results = benchmark.pedantic(_run_fig16, rounds=1, iterations=1)
    rows = [[name, r["cr"], r["ssim"], r["psnr"]] for name, r in results.items()]
    report(
        format_table(
            "Fig. 16 — WarpX Ez at matched CR (paper: SZ3 .662/75.5, Ours .904/86.9)",
            ["variant", "CR", "slice SSIM", "PSNR"],
            rows,
        )
    )
    assert results["Ours (pad+eb)"]["psnr"] >= results["Baseline-SZ3"]["psnr"] - 0.3
