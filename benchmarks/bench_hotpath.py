"""Zero-copy hot read path — coalesced fetches, decode-into, wire framing.

Not a figure from the paper: this benchmark prices the PR-5 read-path
rewrite on a *many-small-blocks* container (the regime the block-indexed
format exists for, and the one per-block syscalls punish hardest):

* **cold fetch** — payload bytes for every block of a level, per-block
  ``seek``+``read`` (the historical path: ``payload_source="file"``,
  ``coalesce_gap=None``) vs coalesced mmap fetches; the asserted >=2x.
* **Morton ROI** — a contiguous cell-space bbox; Morton file order keeps its
  blocks in a few contiguous byte ranges, so the coalesced fetch count must
  be at most half the touched-block count (asserted).
* **decode-into** — ``tracemalloc`` peak of a cacheless whole-level read:
  blocks reconstruct inside the output array, so the peak stays one output
  array plus per-block decode scratch — no second full-array temporary
  (asserted).
* **remote** — a warm read through the daemon in the same process:
  scatter-gather framing and the zero-copy client mean at most one
  payload-sized allocation per side (daemon result assembly + client receive
  buffer, asserted); the client result is a read-only view over its receive
  buffer (asserted).

Numbers land in ``BENCH_hotpath.json`` via :func:`record_bench`.  Runnable
two ways: through pytest like every other benchmark (``-m slow``), or as a
script — ``python benchmarks/bench_hotpath.py [--quick]`` — which is what
the ``hotpath-smoke`` CI job executes on every PR.
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))
from _helpers import format_table, record_bench
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.obs import REGISTRY
from repro.serve import ReadDaemon, RemoteStore
from repro.store import Store
from repro.store.format import ContainerReader
from repro.store.query import bbox_to_block_range
from repro.utils.rng import default_rng

QUICK = "--quick" in sys.argv or os.environ.get("REPRO_BENCH_HOTPATH_QUICK") == "1"
EDGE = 32 if QUICK else 64
UNIT = 4  # tiny unit -> many small blocks (the coalescing-hostile regime)
EB = 1e-2
FETCH_REPEATS = 7


def _best_of(fn, repeats=FETCH_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build(tmp_path):
    rng = default_rng("hotpath-bench")
    field = rng.standard_normal((EDGE, EDGE, EDGE))
    store = Store(tmp_path / "store", MultiResolutionCompressor(unit_size=UNIT))
    entry = store.append("f", 0, field, EB)
    return store, store.root / entry.path


def _run(tmp_path):
    store, container = _build(tmp_path)
    results = {"edge": EDGE, "unit_size": UNIT, "quick": QUICK}

    legacy = ContainerReader(container, payload_source="file", coalesce_gap=None)
    hot = ContainerReader(container)  # auto: mmap + coalescing
    n_blocks = hot.n_blocks
    positions = np.arange(n_blocks)
    results["n_blocks"] = int(n_blocks)
    results["payload_source"] = hot.payload_source

    # -- cold fetch: per-block seek/read vs coalesced mmap --------------------
    legacy.fetch_entries(positions)  # warm the page cache for both paths
    t_legacy = _best_of(lambda: legacy.fetch_entries(positions))
    t_hot = _best_of(lambda: hot.fetch_entries(positions))
    results["cold_fetch"] = {
        "per_block_s": t_legacy,
        "coalesced_s": t_hot,
        "speedup": t_legacy / max(t_hot, 1e-12),
    }

    # -- Morton ROI: coalesced fetch count vs touched blocks ------------------
    info = hot.level_info(0)
    quarter = EDGE // 4
    bbox = tuple((quarter, 3 * quarter) for _ in range(3))
    roi_positions = hot.index.select(
        0, info.ndim, bbox_to_block_range(bbox, info.unit_size)
    )
    before = dict(hot.stats)
    hot.fetch_entries(roi_positions)
    results["morton_roi"] = {
        "bbox": [list(b) for b in bbox],
        "blocks_touched": int(len(roi_positions)),
        "fetch_ranges": hot.stats["fetch_ranges"] - before["fetch_ranges"],
        "fetch_bytes": hot.stats["fetch_bytes"] - before["fetch_bytes"],
        "payload_bytes": hot.stats["payload_bytes_read"] - before["payload_bytes_read"],
    }

    # -- decode-into: no extra full-array temporary ---------------------------
    view = hot.as_array()
    view.cache = None  # direct decode-into path
    out_nbytes = int(np.prod(view.shape)) * 8
    view[...]  # warm imports/codec caches outside the traced window
    tracemalloc.start()
    start = time.perf_counter()
    cold_local = view[...]
    local_s = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    results["decode_into"] = {
        "out_nbytes": out_nbytes,
        "tracemalloc_peak": int(peak),
        "peak_over_out": peak / out_nbytes,
        "whole_level_s": local_s,
    }

    # -- end-to-end cold read, legacy vs hot (decode-dominated; recorded,
    # not asserted) -----------------------------------------------------------
    legacy_view = ContainerReader(
        container, payload_source="file", coalesce_gap=None
    ).as_array()
    legacy_view.cache = None
    start = time.perf_counter()
    legacy_full = legacy_view[...]
    results["end_to_end"] = {
        "legacy_s": time.perf_counter() - start,
        "hot_s": local_s,
    }
    assert np.array_equal(cold_local, legacy_full)

    # -- remote: one payload-sized allocation per side ------------------------
    with ReadDaemon(store) as daemon:
        with RemoteStore(daemon.address) as client:
            remote = client["f", 0]
            start = time.perf_counter()
            cold_remote = remote[...]
            cold_remote_s = time.perf_counter() - start
            assert np.array_equal(np.asarray(cold_remote), cold_local)
            # Warm pass: daemon answers from cache, so the traced peak is the
            # daemon's result assembly + the client's receive buffer — one
            # payload-sized allocation per side, nothing quadratic.
            tracemalloc.start()
            start = time.perf_counter()
            warm_remote = remote[...]
            warm_remote_s = time.perf_counter() - start
            _, remote_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            zero_copy_result = (
                warm_remote.base is not None and not warm_remote.flags.writeable
            )
            # -- obs overhead: metrics+span bookkeeping on vs off on the
            # same warm remote read (tracing stays off, its default) --------
            obs_repeats = 9 if QUICK else 15
            obs_on_s = _best_of(lambda: remote[...], obs_repeats)
            REGISTRY.enabled = False
            try:
                obs_off_s = _best_of(lambda: remote[...], obs_repeats)
            finally:
                REGISTRY.enabled = True
    results["obs_overhead"] = {
        "warm_metrics_on_s": obs_on_s,
        "warm_metrics_off_s": obs_off_s,
        "overhead": obs_on_s / max(obs_off_s, 1e-12) - 1.0,
    }
    results["remote"] = {
        "payload_nbytes": out_nbytes,
        "cold_s": cold_remote_s,
        "warm_s": warm_remote_s,
        "tracemalloc_peak": int(remote_peak),
        "peak_over_payload": remote_peak / out_nbytes,
        "zero_copy_result": bool(zero_copy_result),
    }
    return results


def _check_and_report(results, report):
    cf, roi = results["cold_fetch"], results["morton_roi"]
    di, rm = results["decode_into"], results["remote"]
    ob = results["obs_overhead"]
    report(
        format_table(
            f"Hot read path — {results['edge']}^3, unit {results['unit_size']} "
            f"({results['n_blocks']} blocks, source {results['payload_source']})",
            ["metric", "value"],
            [
                ["per-block fetch [ms]", cf["per_block_s"] * 1e3],
                ["coalesced fetch [ms]", cf["coalesced_s"] * 1e3],
                ["fetch speedup", cf["speedup"]],
                ["ROI blocks / fetches", f"{roi['blocks_touched']} / {roi['fetch_ranges']}"],
                ["decode-into peak / out", di["peak_over_out"]],
                ["remote warm peak / payload", rm["peak_over_payload"]],
                ["remote cold/warm [ms]", f"{rm['cold_s']*1e3:.1f} / {rm['warm_s']*1e3:.1f}"],
                ["obs overhead (warm remote)", f"{ob['overhead']*100:+.1f}%"],
            ],
        )
    )
    record_bench("hotpath", results)
    # The acceptance gates of the zero-copy rewrite:
    assert cf["speedup"] >= 2.0, (
        f"coalesced cold fetch is only {cf['speedup']:.2f}x faster than "
        f"per-block seek/read (>=2x required)"
    )
    assert roi["fetch_ranges"] * 2 <= roi["blocks_touched"], (
        f"Morton ROI needed {roi['fetch_ranges']} fetches for "
        f"{roi['blocks_touched']} blocks (<= half required)"
    )
    # Bound: the output array itself + per-block fetch/plan bookkeeping (a
    # few hundred bytes per block, covered by the flat 2 MiB) — one extra
    # full-array temporary would blow straight through it.
    assert di["tracemalloc_peak"] <= di["out_nbytes"] * 1.25 + (2 << 20), (
        f"decode-into peak {di['tracemalloc_peak']} B vs output "
        f"{di['out_nbytes']} B: an extra full-array temporary is back"
    )
    assert rm["tracemalloc_peak"] <= 2 * rm["payload_nbytes"] * 1.25 + (2 << 20), (
        f"warm remote read peaked at {rm['tracemalloc_peak']} B for a "
        f"{rm['payload_nbytes']} B payload: more than one payload-sized "
        f"allocation per side"
    )
    assert rm["zero_copy_result"], "remote result is not a read-only zero-copy view"
    # PR-6 gate: with tracing off, metrics bookkeeping must be lost in the
    # noise of a warm remote read.  Best-of-N timings plus a small absolute
    # slack keep the 5% bound meaningful without being scheduler-flaky.
    assert ob["warm_metrics_on_s"] <= ob["warm_metrics_off_s"] * 1.05 + 250e-6, (
        f"metrics-on warm read {ob['warm_metrics_on_s']*1e3:.3f} ms vs "
        f"metrics-off {ob['warm_metrics_off_s']*1e3:.3f} ms: observability "
        f"costs more than 5% on the hot path"
    )


@pytest.mark.slow
def test_hotpath(benchmark, report, tmp_path):
    results = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    _check_and_report(results, report)


if __name__ == "__main__":
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        results = _run(Path(tmp))
    _check_and_report(results, lambda text: print("\n" + text))
    print(f"\nok (quick={QUICK}) -> BENCH_hotpath.json")
