"""Pytest configuration for the benchmark harness.

The benchmarks print the reproduced tables/figures to stdout (captured into
``bench_output.txt`` by the top-level run command); ``--benchmark-only``
selects them without running the unit-test suite.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a reproduced table so it survives pytest's output capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _print
