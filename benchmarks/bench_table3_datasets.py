"""Table III — dataset inventory.

The paper's Table III lists each dataset's kind (in-situ/offline, AMR /
adaptive / uniform), per-level sizes and densities.  The reproduction
regenerates every synthetic stand-in and reports the measured level densities
next to the paper's, verifying the registry matches the published
configuration (grid sizes are scaled down; densities and level counts are
preserved).
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table
from repro.datasets.registry import DATASET_TABLE


def _run():
    rows = []
    for name, spec in DATASET_TABLE.items():
        ds = dataset(name)
        densities = ds.level_densities()
        rows.append(
            {
                "name": name,
                "kind": spec.kind,
                "levels": spec.n_levels,
                "paper_densities": spec.level_fractions,
                "measured_densities": densities,
                "shape": ds.field.shape,
                "paper_shape": spec.paper_shape,
            }
        )
    return rows


def test_table3_dataset_inventory(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        format_table(
            "Table III — datasets (densities: paper vs measured; shapes scaled down)",
            ["dataset", "kind", "levels", "paper densities", "measured densities", "shape (paper)"],
            [
                [
                    r["name"],
                    r["kind"],
                    r["levels"],
                    "/".join(f"{d:.0%}" for d in r["paper_densities"]),
                    "/".join(f"{d:.0%}" for d in r["measured_densities"]),
                    f"{r['shape']} ({r['paper_shape']})",
                ]
                for r in rows
            ],
        )
    )
    for r in rows:
        assert len(r["measured_densities"]) == r["levels"]
        for measured, expected in zip(r["measured_densities"], r["paper_densities"]):
            assert abs(measured - expected) < 0.08, r["name"]
