"""Table IV — in-situ output time: AMRIC vs SZ3MR on Nyx.

Paper (128 cores, Bridges-2): SZ3MR's pre-processing is ~2.5x faster than
AMRIC's stacking (0.49 s vs 1.22 s) while compression + writing is slightly
slower due to the padding overhead, for a lower total output time at both a
large and a small error bound.  Absolute seconds are not comparable on a
laptop-scale NumPy reimplementation; the reproduced *shape* is the
pre-processing advantage (linear merge does far less data rearrangement than
cubic stacking) and the small compression-side penalty.
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.amr.simulation import CollapsingDensitySimulation
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.sz3mr import SZ3MRCompressor
from repro.insitu import InSituPipeline

N_STEPS = 3


def _run():
    results = {}
    field = dataset("nyx-t1").field
    big_eb, small_eb = relative_error_bounds(field, (0.04, 0.005))
    for eb_label, eb in (("big", big_eb), ("small", small_eb)):
        for name, mrc in (
            ("AMRIC", MultiResolutionCompressor(compressor="sz3", arrangement="stack")),
            ("Ours", SZ3MRCompressor()),
        ):
            sim = CollapsingDensitySimulation(shape=(64, 64, 64), block_size=8,
                                              fractions=[0.18, 0.82], seed="table4")
            pipeline = InSituPipeline(mrc, output_dir=None, compute_quality=False)
            reports = pipeline.run(sim, N_STEPS, error_bound=eb)
            totals = InSituPipeline.aggregate_timings(reports)
            results[(eb_label, name)] = totals
    return results


def test_table4_output_time_breakdown(benchmark, report, tmp_path):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for (eb_label, name), totals in results.items():
        rows.append(
            [
                eb_label,
                name,
                totals["pre-process"],
                totals["compress+write"],
                totals["total"],
            ]
        )
    report(
        format_table(
            f"Table IV — output time over {N_STEPS} Nyx steps "
            "(paper: AMRIC pre 1.22s/1.23s vs Ours 0.49s/0.47s; totals 2.85/3.52 vs 2.18/2.85)",
            ["error bound", "pipeline", "pre-process [s]", "compress+write [s]", "total [s]"],
            rows,
        )
    )
    # At laptop scale both merges are vectorised NumPy reshapes, so the paper's
    # 2.5x pre-processing gap (AMRIC's stacking involves heavy data movement in
    # the original C++ implementation) does not materialise; what must hold is
    # that the stage breakdown is reproduced (pre-processing is the minor cost)
    # and the two pipelines have comparable total output times.
    for eb_label in ("big", "small"):
        amric = results[(eb_label, "AMRIC")]
        ours = results[(eb_label, "Ours")]
        assert ours["pre-process"] < ours["compress+write"], eb_label
        assert amric["pre-process"] < amric["compress+write"], eb_label
        assert ours["total"] <= amric["total"] * 2.0, eb_label
