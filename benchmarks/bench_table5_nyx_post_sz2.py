"""Table V — post-processing AMRIC-SZ2 on both Nyx-T1 levels.

Paper: post-processing improves AMRIC-SZ2 PSNR on both the fine and the
coarse level of the in-situ Nyx run at every compression ratio, with larger
gains at higher ratios (e.g. fine level 48.1 -> 50.1 dB at CR 270, 77.1 ->
77.6 dB at CR 28).
"""

from __future__ import annotations

import pytest

from _helpers import dataset, format_table, relative_error_bounds
from repro.analysis import psnr
from repro.baselines import amric_sz2_compressor
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth

EB_FRACTIONS = (0.08, 0.04, 0.02, 0.01, 0.002)


def _run():
    ds = dataset("nyx-t1")
    hierarchy = ds.hierarchy
    mrc = amric_sz2_compressor()
    pp = PostProcessor("sz2")
    results = {0: [], 1: []}
    for level in hierarchy.levels:
        bounds = relative_error_bounds(level.data, EB_FRACTIONS)
        for eb in bounds:
            compressed = mrc.compress_level(level.data, level.mask, eb, level_index=level.level)
            decompressed = mrc.decompress_level(compressed)
            plan = pp.plan(level.data, mrc.codec, eb, block_size=4)
            processed = bezier_boundary_smooth(
                decompressed, block_size=4, error_bound=eb, intensity=plan.intensities
            )
            owned = level.mask
            results[level.level].append(
                {
                    "cr": compressed.compression_ratio,
                    "raw": psnr(level.data[owned], decompressed[owned]),
                    "post": psnr(level.data[owned], processed[owned]),
                }
            )
    return results


def test_table5_nyx_amric_sz2_postprocess(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for level, label in ((0, "Fine"), (1, "Coarse")):
        rows = [[f"{r['cr']:.0f}", r["raw"], r["post"], r["post"] - r["raw"]] for r in results[level]]
        report(
            format_table(
                f"Table V — Nyx-T1 {label} level, AMRIC-SZ2 vs post-processed (PSNR on owned cells)",
                ["CR", "PSNR-AMRIC-SZ2", "PSNR-Post-SZ2", "gain"],
                rows,
            )
        )
    for level in (0, 1):
        gains = [r["post"] - r["raw"] for r in results[level]]
        assert all(g >= -1e-9 for g in gains), f"level {level}"
        # gains are largest at the higher compression ratios (first entries)
        assert max(gains[:2]) >= gains[-1] - 0.25
